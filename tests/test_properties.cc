/**
 * @file
 * Cross-cutting property tests and fuzzing: randomised view-chain
 * marshaling equivalence, clustering-quality monotonicity in bits,
 * per-learner footprint monotonicity in |L|, deep/diamond autograd
 * graphs, and determinism under fixed seeds.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

// ----------------------------------------------------------------
// Fuzz: random storage-invariant chains through the marshal hook
// produce gradients identical to the hook-free run.
// ----------------------------------------------------------------

class MarshalFuzz : public ::testing::TestWithParam<int> {};

Variable
randomViewChain(const Variable &x, Rng &rng, int depth)
{
    Variable v = x;
    for (int d = 0; d < depth; ++d) {
        const Shape &s = v.data().shape();
        switch (rng.randint(0, 3)) {
          case 0: // flatten-ish view (requires contiguity)
            if (v.data().isContiguous()) {
                v = af::view(v, {v.data().numel()});
            }
            break;
          case 1: // reshape to 2-d if divisible
            if (v.data().isContiguous() && v.data().numel() % 4 == 0) {
                v = af::view(v, {4, v.data().numel() / 4});
            }
            break;
          case 2: // transpose when 2-d
            if (s.size() == 2) {
                v = af::transpose(v, 0, 1);
            } else {
                v = af::unsqueeze(v, 0);
            }
            break;
          case 3: // squeeze back or slice
            if (s.size() >= 2 && s[0] == 1) {
                v = af::squeeze(v, 0);
            } else if (s[0] >= 4) {
                v = af::slice(v, 0, 1, s[0] - 1);
            }
            break;
        }
    }
    return v;
}

TEST_P(MarshalFuzz, GradsMatchNoHookBaseline)
{
    uint64_t seed = static_cast<uint64_t>(GetParam());
    auto build_loss = [&](const Variable &x) {
        Rng rng(seed);
        // Several random chains, each contributing a saved tensor.
        Variable acc;
        for (int c = 0; c < 4; ++c) {
            Variable v = randomViewChain(x, rng, 1 + c % 4);
            Variable term = af::sumAll(af::square(v));
            acc = acc.defined() ? af::add(acc, term) : term;
        }
        return acc;
    };

    Rng data_rng(seed * 31 + 1);
    Tensor base = Tensor::randn({8, 12}, data_rng);

    // Baseline without hooks.
    Variable x1(base.clone(), true);
    backward(build_loss(x1));

    // With marshaling (GPU tensor, full offload machinery).
    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    Variable x2(base.to(Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        loss = build_loss(x2);
    }
    backward(loss);

    EXPECT_LT(maxAbsDiff(x1.grad(), x2.grad().to(Device::cpu())), 1e-4f)
        << "seed " << seed << " (copies=" << ctx.stats().copies
        << " dedup=" << ctx.stats().duplicatesAvoided << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalFuzz,
                         ::testing::Range(1, 13));

// ----------------------------------------------------------------
// Clustering quality is monotone in bit width.
// ----------------------------------------------------------------

class BitsMonotonic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsMonotonic, PalettizationErrorDecreasesWithBits)
{
    Rng rng(GetParam());
    Tensor w = Tensor::randn({1024}, rng, Device::cpu(), 0.02f)
                   .to(DType::kBf16)
                   .to(DType::kF32);
    double prev = 1e30;
    for (int bits : {1, 2, 3, 4, 5}) {
        EdkmConfig cfg;
        cfg.dkm.bits = bits;
        cfg.dkm.maxIters = 6;
        EdkmLayer layer(cfg);
        NoGradGuard ng;
        layer.forward(Variable(w, false));
        Tensor rec = layer.palettize(w).decompress();
        Tensor d = sub(rec, w);
        double mse = sumAll(mul(d, d)).item();
        EXPECT_LE(mse, prev + 1e-9) << bits << " bits";
        prev = mse;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsMonotonic,
                         ::testing::Values(3u, 5u, 8u));

// ----------------------------------------------------------------
// Per-learner footprint shrinks monotonically with |L|.
// ----------------------------------------------------------------

TEST(ShardingProperty, SavedBytesMonotoneInLearners)
{
    Rng rng(41);
    Tensor w = Tensor::randn({128, 128}, rng, Device::cpu(), 0.02f)
                   .to(DType::kBf16)
                   .to(DType::kF32);
    Rng ur(7);
    Tensor upstream = Tensor::randn({128 * 128}, ur);
    int64_t prev = INT64_MAX;
    for (int learners : {1, 2, 4, 8, 16}) {
        auto group = std::make_shared<LearnerGroup>(learners);
        EdkmConfig cfg;
        cfg.dkm.bits = 3;
        cfg.dkm.maxIters = 2;
        cfg.dkm.convergenceEps = 0.0f;
        cfg.uniquify = true;
        cfg.shard = learners > 1;
        EdkmLayer layer(cfg, group);
        Variable wv(w.clone(), true);
        Variable out = layer.forward(wv);
        backward(af::sumAll(
            af::mul(out, af::constant(upstream.view(out.data()
                                                        .shape())))));
        EXPECT_LE(layer.report().savedBytes, prev)
            << learners << " learners";
        prev = layer.report().savedBytes;
    }
}

// ----------------------------------------------------------------
// Engine stress: deep chains and diamond graphs.
// ----------------------------------------------------------------

TEST(EngineStress, DeepChain)
{
    Variable x(Tensor::fromVector({1.0f}, {1}), true);
    Variable v = x;
    // 200 alternating ops; gradient is the product of local derivs.
    for (int i = 0; i < 100; ++i) {
        v = af::mulScalar(v, 1.01f);
        v = af::addScalar(v, 0.0f);
    }
    backward(v);
    EXPECT_NEAR(x.grad().item(), std::pow(1.01f, 100.0f), 1e-2);
}

TEST(EngineStress, DiamondDependencies)
{
    // x feeds two branches that recombine: grads sum across branches.
    Variable x(Tensor::fromVector({2.0f}, {1}), true);
    Variable a = af::square(x);         // x^2
    Variable b = af::mulScalar(x, 3.0f); // 3x
    Variable c = af::mul(a, b);         // 3x^3 -> d/dx = 9x^2 = 36
    backward(c);
    EXPECT_NEAR(x.grad().item(), 36.0f, 1e-4);
}

TEST(EngineStress, WideFanOut)
{
    Variable x(Tensor::fromVector({1.5f}, {1}), true);
    Variable acc;
    for (int i = 0; i < 64; ++i) {
        Variable t = af::mulScalar(x, static_cast<float>(i));
        acc = acc.defined() ? af::add(acc, t) : t;
    }
    backward(acc);
    // sum of i = 64*63/2 = 2016
    EXPECT_NEAR(x.grad().item(), 2016.0f, 1e-2);
}

// ----------------------------------------------------------------
// Determinism under fixed seeds.
// ----------------------------------------------------------------

TEST(Determinism, EdkmForwardIsDeterministic)
{
    Rng r1(9), r2(9);
    Tensor w1 = Tensor::randn({512}, r1, Device::cpu(), 0.02f);
    Tensor w2 = Tensor::randn({512}, r2, Device::cpu(), 0.02f);
    EXPECT_EQ(maxAbsDiff(w1, w2), 0.0f);

    EdkmConfig cfg;
    cfg.dkm.bits = 3;
    EdkmLayer a(cfg), b(cfg);
    NoGradGuard ng;
    Tensor oa = a.forward(Variable(w1, false)).data();
    Tensor ob = b.forward(Variable(w2, false)).data();
    EXPECT_EQ(maxAbsDiff(oa, ob), 0.0f);
    EXPECT_EQ(a.report().iterations, b.report().iterations);
}

TEST(Determinism, DkmMatchesItselfAcrossRuns)
{
    Rng r(11);
    Tensor w = Tensor::randn({256}, r);
    DkmConfig cfg;
    cfg.bits = 3;
    DkmLayer a(cfg), b(cfg);
    NoGradGuard ng;
    EXPECT_EQ(maxAbsDiff(a.forward(Variable(w, false)).data(),
                         b.forward(Variable(w, false)).data()),
              0.0f);
}

// ----------------------------------------------------------------
// Failure injection: fatal paths stay fatal (no UB / crashes).
// ----------------------------------------------------------------

TEST(FailureInjection, ApiMisuseThrows)
{
    EXPECT_THROW(Tensor::zeros({2}).view({3}), FatalError);
    EXPECT_THROW(Tensor().device(), FatalError);
    EXPECT_THROW(Variable().data(), FatalError);
    Variable no_grad(Tensor::zeros({1}), false);
    EXPECT_THROW(backward(no_grad), FatalError);
    EdkmConfig cfg;
    cfg.dkm.bits = 0;
    EXPECT_THROW(EdkmLayer{cfg}, FatalError);
}

} // namespace
} // namespace edkm
