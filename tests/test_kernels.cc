/**
 * @file
 * Tests for the src/kernels/ subsystem: scalar-vs-SIMD equivalence of
 * every kernel in the dispatch table (bit-exact by the fixed virtual
 * accumulator-lane contract), polynomial-exp accuracy against libm,
 * fused-vs-composed attention-table equivalence, fused distance+argmin
 * vs the binary-search reference, gather batching, and thread-count
 * determinism of the fused kernels (mirroring tests/test_runtime.cc).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "autograd/engine.h"
#include "autograd/variable.h"
#include "core/dkm.h"
#include "core/kmeans.h"
#include "device/device_manager.h"
#include "kernels/attention.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Restore the global pool to the ambient default on scope exit. */
class ThreadCountScope
{
  public:
    explicit ThreadCountScope(int threads)
    {
        runtime::Runtime::instance().setThreadCount(threads);
    }
    ~ThreadCountScope()
    {
        runtime::Runtime::instance().setThreadCount(
            runtime::Runtime::defaultThreadCount());
    }
};

std::vector<float>
randomVec(int64_t n, uint64_t seed, float lo = -3.0f, float hi = 3.0f)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n));
    for (float &x : v) {
        x = rng.uniform(lo, hi);
    }
    return v;
}

void
expectBitEqual(const std::vector<float> &a, const std::vector<float> &b,
               const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << what << " element " << i;
    }
}

/** Sizes covering sub-lane, exact-lane and ragged-tail cases. */
const int64_t kSizes[] = {1, 3, 7, 8, 9, 16, 31, 64, 1000, 1023};

// ---------------------------------------------------------------------
// Scalar-vs-SIMD bit equivalence for every table entry.
// ---------------------------------------------------------------------

TEST(KernelBackends, ScalarAlwaysAvailable)
{
    auto backends = kernels::availableBackends();
    ASSERT_FALSE(backends.empty());
    EXPECT_EQ(backends[0], kernels::Backend::kScalar);
    EXPECT_STREQ(kernels::backendName(kernels::Backend::kScalar),
                 "scalar");
    // active() resolves to one of the available backends.
    bool found = false;
    for (auto b : backends) {
        found = found || kernels::active().backend == b;
    }
    EXPECT_TRUE(found);
}

TEST(KernelBackends, ElementwiseBitIdenticalAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        for (int64_t n : kSizes) {
            std::vector<float> x = randomVec(n, 11u + n);
            std::vector<float> y = randomVec(n, 23u + n, 0.5f, 2.0f);
            std::vector<float> r0(x.size()), r1(x.size());

            auto checkBin = [&](auto fn, const char *what) {
                fn(sc)(x.data(), y.data(), r0.data(), n);
                fn(kt)(x.data(), y.data(), r1.data(), n);
                expectBitEqual(r0, r1, what);
            };
            checkBin([](const kernels::KernelTable &t) { return t.add; },
                     "add");
            checkBin([](const kernels::KernelTable &t) { return t.sub; },
                     "sub");
            checkBin([](const kernels::KernelTable &t) { return t.mul; },
                     "mul");
            checkBin([](const kernels::KernelTable &t) { return t.div; },
                     "div");

            auto checkUn = [&](auto fn, const char *what) {
                fn(sc)(x.data(), r0.data(), n);
                fn(kt)(x.data(), r1.data(), n);
                expectBitEqual(r0, r1, what);
            };
            checkUn([](const kernels::KernelTable &t) { return t.negate; },
                    "negate");
            checkUn([](const kernels::KernelTable &t) { return t.absval; },
                    "absval");
            checkUn(
                [](const kernels::KernelTable &t) { return t.squarev; },
                "squarev");
            checkUn([](const kernels::KernelTable &t) { return t.reluv; },
                    "reluv");
            checkUn([](const kernels::KernelTable &t) { return t.expv; },
                    "expv");
            checkUn([](const kernels::KernelTable &t) { return t.siluv; },
                    "siluv");
            checkUn(
                [](const kernels::KernelTable &t) { return t.sigmoidv; },
                "sigmoidv");

            // sqrt on non-negative input.
            std::vector<float> xp = randomVec(n, 31u + n, 0.0f, 9.0f);
            sc.sqrtv(xp.data(), r0.data(), n);
            kt.sqrtv(xp.data(), r1.data(), n);
            expectBitEqual(r0, r1, "sqrtv");

            sc.scale(x.data(), 1.7f, r0.data(), n);
            kt.scale(x.data(), 1.7f, r1.data(), n);
            expectBitEqual(r0, r1, "scale");
            sc.offset(x.data(), -0.3f, r0.data(), n);
            kt.offset(x.data(), -0.3f, r1.data(), n);
            expectBitEqual(r0, r1, "offset");
            sc.clampv(x.data(), -1.0f, 1.0f, r0.data(), n);
            kt.clampv(x.data(), -1.0f, 1.0f, r1.data(), n);
            expectBitEqual(r0, r1, "clampv");

            std::vector<float> acc0 = randomVec(n, 5u + n);
            std::vector<float> acc1 = acc0;
            sc.axpy(x.data(), 0.77f, acc0.data(), n);
            kt.axpy(x.data(), 0.77f, acc1.data(), n);
            expectBitEqual(acc0, acc1, "axpy");
        }
    }
}

TEST(KernelBackends, ReductionsBitIdenticalAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        for (int64_t n : kSizes) {
            std::vector<float> x = randomVec(n, 41u + n);
            std::vector<float> y = randomVec(n, 43u + n);
            EXPECT_EQ(sc.reduceMax(x.data(), n), kt.reduceMax(x.data(), n))
                << "reduceMax n=" << n;
            EXPECT_EQ(sc.dot(x.data(), y.data(), n),
                      kt.dot(x.data(), y.data(), n))
                << "dot n=" << n;
        }
    }
}

TEST(KernelBackends, MatvecBitIdenticalAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        for (int64_t k : {1, 7, 16, 33}) {
            int64_t rows = 57;
            std::vector<float> a = randomVec(rows * k, 51u + k);
            std::vector<float> x = randomVec(k, 53u + k);
            std::vector<float> y0(static_cast<size_t>(rows)),
                y1(static_cast<size_t>(rows));
            sc.matvec(a.data(), rows, k, x.data(), y0.data());
            kt.matvec(a.data(), rows, k, x.data(), y1.data());
            expectBitEqual(y0, y1, "matvec");
        }
    }
}

TEST(KernelBackends, FusedRowKernelsBitIdenticalAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        for (int64_t k : {1, 5, 8, 16, 19}) {
            int64_t rows = 97;
            std::vector<float> u = randomVec(rows, 61u + k, -0.1f, 0.1f);
            std::vector<float> c = randomVec(k, 67u + k, -0.1f, 0.1f);
            std::vector<float> t0(static_cast<size_t>(rows * k));
            std::vector<float> t1(static_cast<size_t>(rows * k));

            sc.attentionRows(u.data(), rows, c.data(), k, -1e3f,
                             t0.data());
            kt.attentionRows(u.data(), rows, c.data(), k, -1e3f,
                             t1.data());
            expectBitEqual(t0, t1, "attentionRows");

            sc.softmaxRows(t0.data(), rows, k, t0.data());
            kt.softmaxRows(t1.data(), rows, k, t1.data());
            expectBitEqual(t0, t1, "softmaxRows");

            sc.absDiffRows(u.data(), rows, c.data(), k, t0.data());
            kt.absDiffRows(u.data(), rows, c.data(), k, t1.data());
            expectBitEqual(t0, t1, "absDiffRows");

            std::vector<float> cs = c;
            std::sort(cs.begin(), cs.end());
            std::vector<int32_t> a0(static_cast<size_t>(rows));
            std::vector<int32_t> a1(static_cast<size_t>(rows));
            sc.nearestRows(u.data(), rows, cs.data(), k, a0.data());
            kt.nearestRows(u.data(), rows, cs.data(), k, a1.data());
            EXPECT_EQ(a0, a1) << "nearestRows k=" << k;
        }
    }
}

TEST(KernelBackends, AdamwStepBitIdenticalAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        for (int64_t n : kSizes) {
            std::vector<float> p0 = randomVec(n, 71u + n);
            std::vector<float> m0 = randomVec(n, 73u + n, -0.1f, 0.1f);
            std::vector<float> v0 = randomVec(n, 79u + n, 0.0f, 0.1f);
            std::vector<float> g = randomVec(n, 83u + n);
            std::vector<float> p1 = p0, m1 = m0, v1 = v0;
            sc.adamwStep(p0.data(), m0.data(), v0.data(), g.data(), n,
                         1e-3f, 0.9f, 0.999f, 1e-8f, 0.01f, 0.1f,
                         0.001999f);
            kt.adamwStep(p1.data(), m1.data(), v1.data(), g.data(), n,
                         1e-3f, 0.9f, 0.999f, 1e-8f, 0.01f, 0.1f,
                         0.001999f);
            expectBitEqual(p0, p1, "adamw p");
            expectBitEqual(m0, m1, "adamw m");
            expectBitEqual(v0, v1, "adamw v");
        }
    }
}

// ---------------------------------------------------------------------
// Polynomial exp accuracy and saturation semantics.
// ---------------------------------------------------------------------

TEST(KernelExp, MatchesLibmWithinTightRelativeError)
{
    const kernels::KernelTable &kt = kernels::active();
    std::vector<float> x;
    for (float v = -87.0f; v <= 88.0f; v += 0.37f) {
        x.push_back(v);
    }
    std::vector<float> y(x.size());
    kt.expv(x.data(), y.data(), static_cast<int64_t>(x.size()));
    for (size_t i = 0; i < x.size(); ++i) {
        double ref = std::exp(static_cast<double>(x[i]));
        EXPECT_NEAR(y[i] / ref, 1.0, 1e-6) << "exp(" << x[i] << ")";
    }
}

TEST(KernelExp, FlushesToZeroBelowRangeAndSaturatesAbove)
{
    const kernels::KernelTable &kt = kernels::active();
    std::vector<float> x = {-1e9f, -200.0f, -88.0f, 200.0f, 1e9f};
    std::vector<float> y(x.size());
    kt.expv(x.data(), y.data(), static_cast<int64_t>(x.size()));
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 0.0f);
    EXPECT_GT(y[3], 1e38f); // saturated at exp(88), still finite
    EXPECT_EQ(y[3], y[4]);
    EXPECT_TRUE(std::isfinite(y[3]));
}

TEST(KernelExp, PropagatesNaNOnEveryBackend)
{
    // A poisoned input must stay visibly poisoned (std::exp semantics),
    // not be laundered into a plausible finite attention weight.
    float nan = std::numeric_limits<float>::quiet_NaN();
    for (auto b : kernels::availableBackends()) {
        const kernels::KernelTable &kt = kernels::table(b);
        std::vector<float> x = {0.5f, nan, -1.0f, nan, 2.0f, 0.0f,
                                nan, 1.0f, nan};
        std::vector<float> y(x.size());
        kt.expv(x.data(), y.data(), static_cast<int64_t>(x.size()));
        for (size_t i = 0; i < x.size(); ++i) {
            EXPECT_EQ(std::isnan(y[i]), std::isnan(x[i]))
                << kernels::backendName(b) << " element " << i;
        }
        kt.sigmoidv(x.data(), y.data(), static_cast<int64_t>(x.size()));
        EXPECT_TRUE(std::isnan(y[1]));
        // clamp keeps std::clamp's NaN pass-through instead of
        // laundering NaN into the lower bound.
        kt.clampv(x.data(), -1.0f, 1.0f, y.data(),
                  static_cast<int64_t>(x.size()));
        EXPECT_TRUE(std::isnan(y[1]));
        EXPECT_EQ(y[4], 1.0f);
        // A NaN score poisons its whole softmax row instead of
        // producing a clean distribution.
        std::vector<float> row = {1.0f, nan, 2.0f, 0.5f};
        std::vector<float> sm(row.size());
        kt.softmaxRows(row.data(), 1, 4, sm.data());
        bool any_nan = false;
        for (float v : sm) {
            any_nan = any_nan || std::isnan(v);
        }
        EXPECT_TRUE(any_nan) << kernels::backendName(b);
    }
}

// ---------------------------------------------------------------------
// Fused attention table == composed op chain, bitwise.
// ---------------------------------------------------------------------

TEST(FusedAttention, BitIdenticalToComposedOpChain)
{
    Rng rng(7);
    int64_t n = 3000, k = 16;
    float tau = 2e-4f;
    Tensor u = Tensor::randn({n, 1}, rng, Device::cpu(), 0.02f);
    Tensor c = Tensor::randn({1, k}, rng, Device::cpu(), 0.02f);

    Tensor composed =
        softmaxLastDim(mulScalar(square(sub(u, c)), -1.0f / tau));
    Tensor fused = kernels::attentionTable(u, c, tau);

    ASSERT_EQ(fused.shape(), composed.shape());
    std::vector<float> vf = fused.toVector(), vc = composed.toVector();
    for (size_t i = 0; i < vf.size(); ++i) {
        ASSERT_EQ(vf[i], vc[i]) << "element " << i;
    }
}

TEST(FusedAttention, RowsSumToOne)
{
    Rng rng(9);
    int64_t n = 513, k = 8;
    Tensor u = Tensor::randn({n}, rng);
    Tensor cvec = Tensor::randn({k}, rng);
    Tensor t = kernels::attentionTable(u, cvec, 0.5f);
    for (int64_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (int64_t j = 0; j < k; ++j) {
            s += t.at({r, j});
        }
        EXPECT_NEAR(s, 1.0, 1e-5) << "row " << r;
    }
}

// ---------------------------------------------------------------------
// Fused distance+argmin vs the binary-search reference.
// ---------------------------------------------------------------------

TEST(NearestKernel, MatchesBinarySearchReference)
{
    Rng rng(13);
    for (int k : {1, 2, 16, 200}) {
        std::vector<float> centroids(static_cast<size_t>(k));
        for (float &c : centroids) {
            c = rng.uniform(-1.0f, 1.0f);
        }
        // Inject duplicates to exercise tie-breaking.
        if (k >= 4) {
            centroids[1] = centroids[2];
        }
        std::sort(centroids.begin(), centroids.end());
        std::vector<float> values(1537);
        for (float &v : values) {
            v = rng.uniform(-1.2f, 1.2f);
        }
        // Exact centroid hits and midpoints (worst-case ties).
        values[0] = centroids[0];
        if (k >= 2) {
            values[1] =
                centroids[0] + (centroids[1] - centroids[0]) / 2.0f;
        }
        std::vector<int32_t> got(values.size());
        kernels::assignNearest(centroids, values.data(),
                               static_cast<int64_t>(values.size()),
                               got.data());
        for (size_t i = 0; i < values.size(); ++i) {
            ASSERT_EQ(got[i], nearestCentroid(centroids, values[i]))
                << "value " << values[i] << " k=" << k;
        }
    }
}

// ---------------------------------------------------------------------
// Gather batching.
// ---------------------------------------------------------------------

TEST(GatherKernel, MatchesNaiveRowCopyIncludingRuns)
{
    Rng rng(17);
    int64_t U = 300, k = 16, n = 2000;
    Tensor tab = Tensor::randn({U, k}, rng);
    std::vector<float> tv = tab.toVector();
    Tensor idx = Tensor::empty({n}, DType::kU16);
    uint16_t *pi = idx.rawData<uint16_t>();
    for (int64_t i = 0; i < n; ++i) {
        // Long consecutive runs + random jumps: exercises memcpy
        // batching across run boundaries.
        pi[i] = (i % 3 == 0)
                    ? static_cast<uint16_t>(rng.uniform(0.0f, 1.0f) *
                                            (U - 1))
                    : static_cast<uint16_t>((pi[i - 1] + 1) % U);
    }
    Tensor out = kernels::gatherTableRows(tab, idx);
    ASSERT_EQ(out.shape(), (Shape{n, k}));
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < k; ++j) {
            ASSERT_EQ(out.at({i, j}),
                      tv[static_cast<size_t>(pi[i] * k + j)])
                << i << "," << j;
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: fused kernels are bit-identical across thread counts,
// and the DKM inference fast path reproduces the autograd path.
// ---------------------------------------------------------------------

TEST(KernelDeterminism, AttentionTableIdentical1Vs8Threads)
{
    Rng rng(19);
    Tensor u = Tensor::randn({20000, 1}, rng, Device::cpu(), 0.02f);
    Tensor c = Tensor::randn({1, 16}, rng, Device::cpu(), 0.02f);
    Tensor serial_t, parallel_t;
    {
        ThreadCountScope scope(1);
        serial_t = kernels::attentionTable(u, c, 1e-3f);
    }
    {
        ThreadCountScope scope(8);
        parallel_t = kernels::attentionTable(u, c, 1e-3f);
    }
    std::vector<float> a = serial_t.toVector(), b = parallel_t.toVector();
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "element " << i;
    }
}

TEST(KernelDeterminism, MatvecPathIdentical1Vs8Threads)
{
    Rng rng(23);
    Tensor a = Tensor::randn({50000, 16}, rng);
    Tensor x = Tensor::randn({16, 1}, rng);
    Tensor serial_y, parallel_y;
    {
        ThreadCountScope scope(1);
        serial_y = matmul(a, x);
    }
    {
        ThreadCountScope scope(8);
        parallel_y = matmul(a, x);
    }
    std::vector<float> va = serial_y.toVector(),
                       vb = parallel_y.toVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(va[i], vb[i]) << "row " << i;
    }
}

TEST(KernelDeterminism, DkmFastPathMatchesAutogradPathBitwise)
{
    Rng rng(29);
    Tensor w = Tensor::randn({4096}, rng, Device::cpu(), 0.02f)
                   .to(DType::kBf16)
                   .to(DType::kF32);
    DkmConfig cfg;
    cfg.bits = 4;
    cfg.maxIters = 5;

    DkmLayer grad_layer(cfg);
    Variable out_grad = grad_layer.forward(Variable(w.clone(), true));

    DkmLayer fast_layer(cfg);
    Tensor out_fast;
    {
        NoGradGuard ng;
        out_fast =
            fast_layer.forward(Variable(w.clone(), true)).data();
    }
    EXPECT_EQ(grad_layer.lastIterations(), fast_layer.lastIterations());
    std::vector<float> a = out_grad.data().toVector(),
                       b = out_fast.toVector();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "element " << i;
    }
}

} // namespace
} // namespace edkm
