/**
 * @file
 * Autograd tests: finite-difference gradient checks for every op, graph
 * mechanics (fan-out, accumulation, detach, no-grad), and the saved-
 * tensor hook extension point.
 */

#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "autograd/node.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace edkm {
namespace {

/**
 * Central-difference gradient check: compares autograd's dL/dx against
 * (L(x+h) - L(x-h)) / 2h elementwise for a scalar loss fn.
 */
void
gradCheck(const std::function<Variable(const Variable &)> &fn,
          Tensor x0, float h = 1e-3f, float tol = 2e-2f)
{
    Variable x(x0.clone(), /*requires_grad=*/true);
    Variable loss = fn(x);
    ASSERT_EQ(loss.data().numel(), 1) << "gradCheck needs a scalar loss";
    backward(loss);
    ASSERT_TRUE(x.grad().defined());

    int64_t n = x0.numel();
    for (int64_t i = 0; i < n; ++i) {
        float orig = x0.flatAt(i);
        Tensor xp = x0.clone();
        xp.setFlatAt(i, orig + h);
        Tensor xm = x0.clone();
        xm.setFlatAt(i, orig - h);
        NoGradGuard ng;
        float lp = fn(Variable(xp, false)).data().item();
        float lm = fn(Variable(xm, false)).data().item();
        float fd = (lp - lm) / (2.0f * h);
        float ag = x.grad().flatAt(i);
        ASSERT_NEAR(ag, fd, tol * std::max(1.0f, std::fabs(fd)))
            << "element " << i;
    }
}

Rng &
rng()
{
    static Rng r(321);
    return r;
}

TEST(Autograd, AddSubMulDiv)
{
    Tensor b0 = Tensor::randn({3, 2}, rng());
    Variable b(b0, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::mul(af::add(x, b), af::sub(x, b)));
    }, Tensor::randn({3, 2}, rng()));
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::div(b, af::addScalar(af::square(x), 1.0f)));
    }, Tensor::randn({3, 2}, rng()));
}

TEST(Autograd, BroadcastGradsReduceCorrectly)
{
    // [2,3] + [1,3]: grad of the row must be summed over rows.
    Tensor row0 = Tensor::randn({1, 3}, rng());
    Tensor m0 = Tensor::randn({2, 3}, rng());
    Variable m(m0, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::add(m, x)));
    }, row0);
}

TEST(Autograd, UnaryOps)
{
    gradCheck([](const Variable &x) {
        return af::sumAll(af::exp(x));
    }, Tensor::randn({4}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::log(af::addScalar(af::square(x), 1.5f)));
    }, Tensor::randn({4}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::sqrt(af::addScalar(af::square(x), 2.0f)));
    }, Tensor::randn({4}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::silu(x));
    }, Tensor::randn({5}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::sigmoid(x));
    }, Tensor::randn({5}, rng()));
}

TEST(Autograd, MatmulBothSides)
{
    Tensor a0 = Tensor::randn({3, 4}, rng());
    Tensor b0 = Tensor::randn({4, 2}, rng());
    Variable bc(b0, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::matmul(x, bc)));
    }, a0);
    Variable ac(a0, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::matmul(ac, x)));
    }, b0);
}

TEST(Autograd, BatchedMatmulBroadcastRhsGrad)
{
    Tensor a0 = Tensor::randn({2, 3, 4}, rng());
    Tensor b0 = Tensor::randn({4, 2}, rng());
    Variable ac(a0, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::matmul(ac, x)));
    }, b0);
}

TEST(Autograd, SoftmaxAndLogSoftmax)
{
    Tensor w0 = Tensor::randn({2, 5}, rng());
    Tensor target = Tensor::randn({2, 5}, rng());
    Variable t(target, false);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::sub(af::softmaxLastDim(x), t)));
    }, w0);
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::mul(af::logSoftmaxLastDim(x), t));
    }, w0, 1e-3f, 3e-2f);
}

TEST(Autograd, Reductions)
{
    gradCheck([](const Variable &x) {
        return af::meanAll(af::square(x));
    }, Tensor::randn({3, 3}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::square(af::sumDim(x, 0)));
    }, Tensor::randn({3, 4}, rng()));
    gradCheck([](const Variable &x) {
        return af::sumAll(af::square(af::meanDim(x, 1, true)));
    }, Tensor::randn({3, 4}, rng()));
}

TEST(Autograd, ViewOpsRouteGradients)
{
    Tensor x0 = Tensor::randn({2, 6}, rng());
    gradCheck([](const Variable &x) {
        Variable v = af::view(x, {3, 4});
        return af::sumAll(af::square(af::transpose(v, 0, 1)));
    }, x0);
    gradCheck([](const Variable &x) {
        return af::sumAll(af::square(af::slice(x, 1, 1, 4)));
    }, x0);
    gradCheck([](const Variable &x) {
        return af::sumAll(af::square(af::select(x, 0, 1)));
    }, x0);
    gradCheck([](const Variable &x) {
        Variable p = af::permute(af::view(x, {2, 3, 2}), {2, 0, 1});
        return af::sumAll(af::square(af::contiguous(p)));
    }, x0);
}

TEST(Autograd, ViewSharesStorageWithInput)
{
    Variable x(Tensor::randn({4, 4}, rng()), true);
    Variable v = af::view(x, {16});
    Variable t = af::transpose(x, 0, 1);
    EXPECT_EQ(v.data().storageId(), x.data().storageId());
    EXPECT_EQ(t.data().storageId(), x.data().storageId());
    // Graph metadata marks them storage-invariant.
    EXPECT_TRUE(v.gradFn()->storageInvariant());
    EXPECT_TRUE(t.gradFn()->storageInvariant());
    EXPECT_FALSE(af::square(x).gradFn()->storageInvariant());
}

TEST(Autograd, GatherRowsGrad)
{
    Tensor table0 = Tensor::randn({5, 3}, rng());
    Tensor idx = Tensor::fromIndices({4, 0, 4, 2}, {4});
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::gatherRows(x, idx)));
    }, table0);
}

TEST(Autograd, CrossEntropyGrad)
{
    Tensor logits0 = Tensor::randn({4, 6}, rng());
    Tensor targets = Tensor::fromIndices({1, 5, 0, 3}, {4});
    gradCheck([&](const Variable &x) {
        return af::crossEntropy(x, targets);
    }, logits0);
}

TEST(Autograd, CrossEntropyValueMatchesManual)
{
    Tensor logits = Tensor::fromVector({2, 0, 0, 0, 3, 0}, {2, 3});
    Tensor targets = Tensor::fromIndices({0, 1}, {2});
    Variable loss = af::crossEntropy(Variable(logits, true), targets);
    Tensor lp = logSoftmaxLastDim(logits);
    float expect = -(lp.at({0, 0}) + lp.at({1, 1})) / 2.0f;
    EXPECT_NEAR(loss.data().item(), expect, 1e-6);
}

TEST(Autograd, RopeGradAndInverse)
{
    int64_t s = 3, d = 4;
    Rng r(9);
    Tensor cos = Tensor::rand({s, d}, r);
    Tensor sin = Tensor::rand({s, d}, r);
    Tensor x0 = Tensor::randn({2, s, d}, rng());
    gradCheck([&](const Variable &x) {
        return af::sumAll(af::square(af::rope(x, cos, sin)));
    }, x0);
}

TEST(Autograd, FanOutAccumulates)
{
    // y = x*x + x*x reuses x twice through two paths.
    Variable x(Tensor::fromVector({2.0f}, {1}), true);
    Variable y = af::add(af::mul(x, x), af::mul(x, x));
    backward(y);
    EXPECT_NEAR(x.grad().item(), 8.0f, 1e-5); // d/dx 2x^2 = 4x
}

TEST(Autograd, GradAccumulatesAcrossBackwards)
{
    Variable x(Tensor::fromVector({3.0f}, {1}), true);
    backward(af::square(x));
    backward(af::square(x));
    EXPECT_NEAR(x.grad().item(), 12.0f, 1e-5); // 6 + 6
    x.zeroGrad();
    EXPECT_FALSE(x.grad().defined());
}

TEST(Autograd, NoGradSkipsGraph)
{
    Variable x(Tensor::fromVector({1.0f}, {1}), true);
    NoGradGuard ng;
    Variable y = af::square(x);
    EXPECT_EQ(y.gradFn(), nullptr);
    EXPECT_FALSE(y.requiresGrad());
}

TEST(Autograd, DetachStopsGradient)
{
    Variable x(Tensor::fromVector({2.0f}, {1}), true);
    Variable y = af::square(x).detach();
    Variable z = af::mul(y, y);
    EXPECT_FALSE(z.requiresGrad());
}

TEST(Autograd, BackwardOnNonScalarWithSeed)
{
    Variable x(Tensor::fromVector({1, 2, 3}, {3}), true);
    Variable y = af::square(x);
    backward(y, Tensor::fromVector({1, 10, 100}, {3}));
    EXPECT_NEAR(x.grad().flatAt(0), 2.0f, 1e-5);
    EXPECT_NEAR(x.grad().flatAt(1), 40.0f, 1e-5);
    EXPECT_NEAR(x.grad().flatAt(2), 600.0f, 1e-5);
}

/** Minimal hooks that count pack/unpack and store tensors as-is. */
class CountingHooks : public SavedTensorHooks
{
  public:
    std::shared_ptr<void>
    pack(const SavedSource &src) override
    {
        ++packs;
        return std::make_shared<Tensor>(src.tensor);
    }

    Tensor
    unpack(const std::shared_ptr<void> &h) override
    {
        ++unpacks;
        return *std::static_pointer_cast<Tensor>(h);
    }

    int packs = 0;
    int unpacks = 0;
};

TEST(Autograd, SavedTensorHooksInterceptSaves)
{
    CountingHooks hooks;
    Variable x(Tensor::randn({3, 3}, rng()), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&hooks);
        // mul saves both operands; softmax saves its output.
        loss = af::sumAll(af::mul(af::softmaxLastDim(x), x));
    }
    EXPECT_GE(hooks.packs, 3);
    int packs_before_backward = hooks.packs;
    backward(loss);
    EXPECT_EQ(hooks.packs, packs_before_backward);
    EXPECT_GE(hooks.unpacks, 3);
    EXPECT_TRUE(x.grad().defined());
}

TEST(Autograd, HooksStackInnermostWins)
{
    CountingHooks outer, inner;
    Variable x(Tensor::randn({2, 2}, rng()), true);
    {
        SavedTensorHooksGuard g1(&outer);
        {
            SavedTensorHooksGuard g2(&inner);
            af::square(x);
        }
        af::square(x);
    }
    EXPECT_EQ(inner.packs, 1);
    EXPECT_EQ(outer.packs, 1);
}

} // namespace
} // namespace edkm
