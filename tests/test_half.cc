/**
 * @file
 * Unit tests for the bit-exact FP16/BF16 software conversions — the
 * foundation of eDKM's uniquification (the 2^16-pattern property).
 */

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include "util/half.h"
#include "util/rng.h"

namespace edkm {
namespace {

TEST(Bf16, ExactValuesRoundTrip)
{
    // Values exactly representable in bf16 must survive unchanged.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 128.0f}) {
        EXPECT_EQ(roundToBf16(v), v) << v;
    }
}

TEST(Bf16, RoundToNearestEven)
{
    // bf16 drops 16 mantissa bits; 0x8000 in the dropped field is the
    // exact tie. At 1.0 the kept LSB is 0 (even) -> ties round down.
    float halfway = bitsToFloat(0x3f808000u);
    EXPECT_EQ(roundToBf16(halfway), 1.0f);

    float above = bitsToFloat(0x3f808001u); // just above the tie
    EXPECT_GT(roundToBf16(above), 1.0f);

    // At 1.0 + 1 ULP the kept LSB is 1 (odd) -> ties round up.
    float odd_tie = bitsToFloat(0x3f818000u);
    EXPECT_EQ(floatToBf16(odd_tie), 0x3f82u);
}

TEST(Bf16, InfinityAndNan)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(bf16ToFloat(floatToBf16(inf)), inf);
    EXPECT_EQ(bf16ToFloat(floatToBf16(-inf)), -inf);
    EXPECT_TRUE(std::isnan(bf16ToFloat(
        floatToBf16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Bf16, SignPreserved)
{
    EXPECT_EQ(floatToBf16(-0.0f) >> 15, 1u);
    EXPECT_EQ(floatToBf16(0.0f) >> 15, 0u);
}

TEST(Fp16, ExactValuesRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 65504.0f, -2048.0f}) {
        EXPECT_EQ(roundToFp16(v), v) << v;
    }
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_TRUE(std::isinf(fp16ToFloat(floatToFp16(1e6f))));
    EXPECT_TRUE(std::isinf(fp16ToFloat(floatToFp16(-1e6f))));
    // Largest normal fp16 survives.
    EXPECT_EQ(roundToFp16(65504.0f), 65504.0f);
}

TEST(Fp16, Subnormals)
{
    // Smallest positive subnormal: 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(roundToFp16(tiny), tiny);
    // Below half the smallest subnormal underflows to zero.
    EXPECT_EQ(roundToFp16(std::ldexp(1.0f, -26)), 0.0f);
    // Smallest normal.
    float min_normal = std::ldexp(1.0f, -14);
    EXPECT_EQ(roundToFp16(min_normal), min_normal);
}

TEST(Fp16, NanPreserved)
{
    EXPECT_TRUE(std::isnan(fp16ToFloat(
        floatToFp16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Fp16, RoundToNearestEvenAtOne)
{
    // 1 + 2^-11 is halfway between 1.0 and the next fp16 (1 + 2^-10).
    float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(roundToFp16(halfway), 1.0f); // ties to even (mantissa 0)
    float next = 1.0f + std::ldexp(1.0f, -10);
    EXPECT_EQ(roundToFp16(next), next);
}

/** Property sweep: round-trip idempotence and monotonicity. */
class HalfSweep : public ::testing::TestWithParam<int> {};

TEST_P(HalfSweep, RoundTripIdempotent)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    for (int i = 0; i < 2000; ++i) {
        float v = rng.normal(0.0f, std::pow(10.0f, rng.uniform(-3, 3)));
        float b1 = roundToBf16(v);
        EXPECT_EQ(roundToBf16(b1), b1); // idempotent
        float f1 = roundToFp16(v);
        EXPECT_EQ(roundToFp16(f1), f1);
        // Rounding error bounded by half ULP: bf16 has 8 mantissa bits.
        if (std::isfinite(b1)) {
            EXPECT_NEAR(b1, v, std::fabs(v) / 128.0f + 1e-30f);
        }
        if (std::isfinite(f1) && std::fabs(v) < 65000.0f) {
            EXPECT_NEAR(f1, v, std::fabs(v) / 512.0f + 1e-7f);
        }
    }
}

TEST_P(HalfSweep, OrderPreserved)
{
    Rng rng(static_cast<uint64_t>(GetParam()) + 77);
    for (int i = 0; i < 500; ++i) {
        float a = rng.normal(0.0f, 10.0f);
        float b = rng.normal(0.0f, 10.0f);
        if (a > b) {
            std::swap(a, b);
        }
        EXPECT_LE(roundToBf16(a), roundToBf16(b));
        EXPECT_LE(roundToFp16(a), roundToFp16(b));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfSweep, ::testing::Values(1, 2, 3, 4));

TEST(HalfBits, PatternCountBounded)
{
    // The uniquification premise: every float maps into 2^16 patterns.
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        float v = rng.normal();
        uint16_t b = floatToHalfBits(v, HalfKind::kBf16);
        // Decode/encode is stable.
        EXPECT_EQ(floatToHalfBits(halfBitsToFloat(b, HalfKind::kBf16),
                                  HalfKind::kBf16),
                  b);
    }
}

} // namespace
} // namespace edkm
