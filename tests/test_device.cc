/**
 * @file
 * Unit tests for the simulated device layer: memory accounting, transfer
 * ledger, capacity tracking, and the cost model.
 */

#include <gtest/gtest.h>

#include "device/device_manager.h"
#include "tensor/tensor.h"

namespace edkm {
namespace {

class DeviceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }
};

TEST_F(DeviceTest, DeviceIdentity)
{
    EXPECT_TRUE(Device::cpu().isCpu());
    EXPECT_TRUE(Device::gpu(3).isGpu());
    EXPECT_EQ(Device::gpu(3).index, 3);
    EXPECT_EQ(Device::cpu(), Device::cpu());
    EXPECT_NE(Device::cpu(), Device::gpu(0));
    EXPECT_NE(Device::gpu(0), Device::gpu(1));
    EXPECT_EQ(Device::cpu().toString(), "cpu");
    EXPECT_EQ(Device::gpu(2).toString(), "gpu:2");
}

TEST_F(DeviceTest, AllocFreeAccounting)
{
    DeviceManager &mgr = DeviceManager::instance();
    int64_t base = mgr.stats(Device::gpu(0)).currentBytes;
    mgr.recordAlloc(Device::gpu(0), 1000);
    mgr.recordAlloc(Device::gpu(0), 500);
    EXPECT_EQ(mgr.stats(Device::gpu(0)).currentBytes, base + 1500);
    EXPECT_GE(mgr.stats(Device::gpu(0)).peakBytes, base + 1500);
    mgr.recordFree(Device::gpu(0), 1000);
    EXPECT_EQ(mgr.stats(Device::gpu(0)).currentBytes, base + 500);
    // Peak is sticky.
    EXPECT_GE(mgr.stats(Device::gpu(0)).peakBytes, base + 1500);
    mgr.recordFree(Device::gpu(0), 500);
}

TEST_F(DeviceTest, StorageIntegration)
{
    DeviceManager &mgr = DeviceManager::instance();
    int64_t before = mgr.stats(Device::gpu(1)).currentBytes;
    {
        Tensor t = Tensor::zeros({256, 256}, DType::kF32, Device::gpu(1));
        EXPECT_EQ(mgr.stats(Device::gpu(1)).currentBytes,
                  before + 256 * 256 * 4);
    }
    // Storage freed on destruction.
    EXPECT_EQ(mgr.stats(Device::gpu(1)).currentBytes, before);
}

TEST_F(DeviceTest, TransferLedgerDirections)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordTransfer(Device::gpu(0), Device::cpu(), 100);
    mgr.recordTransfer(Device::cpu(), Device::gpu(0), 200);
    mgr.recordTransfer(Device::gpu(0), Device::gpu(1), 300);
    TransferLedger ledger = mgr.ledger();
    EXPECT_EQ(ledger.d2hTransactions, 1);
    EXPECT_EQ(ledger.d2hBytes, 100);
    EXPECT_EQ(ledger.h2dTransactions, 1);
    EXPECT_EQ(ledger.h2dBytes, 200);
    EXPECT_EQ(ledger.d2dTransactions, 1);
    EXPECT_EQ(ledger.d2dBytes, 300);
    EXPECT_EQ(ledger.totalTransactions(), 3);
    EXPECT_EQ(ledger.totalBytes(), 600);
}

TEST_F(DeviceTest, CpuToCpuNotBusTraffic)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordTransfer(Device::cpu(), Device::cpu(), 1000);
    EXPECT_EQ(mgr.ledger().totalTransactions(), 0);
}

TEST_F(DeviceTest, CapacityExceededFlag)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.setCapacity(Device::gpu(0), 1000);
    mgr.recordAlloc(Device::gpu(0), 800);
    EXPECT_FALSE(mgr.stats(Device::gpu(0)).capacityExceeded);
    mgr.recordAlloc(Device::gpu(0), 800);
    EXPECT_TRUE(mgr.stats(Device::gpu(0)).capacityExceeded);
    mgr.recordFree(Device::gpu(0), 1600);
}

TEST_F(DeviceTest, CostModelTransferSeconds)
{
    CostModel cost;
    cost.busBytesPerSec = 1e9;
    cost.transferLatencySec = 1e-6;
    // 1 GB at 1 GB/s = 1 s + latency.
    EXPECT_NEAR(cost.transferSeconds(1000000000), 1.0 + 1e-6, 1e-9);
    // Compute seconds differ per device class.
    EXPECT_LT(cost.computeSeconds(1e9, Device::gpu(0)),
              cost.computeSeconds(1e9, Device::cpu()));
}

TEST_F(DeviceTest, SimulatedSecondsAccumulate)
{
    DeviceManager &mgr = DeviceManager::instance();
    double t0 = mgr.simulatedSeconds();
    mgr.recordComputeSeconds(0.5);
    mgr.recordExtraSeconds(0.25);
    mgr.recordTransfer(Device::gpu(0), Device::cpu(), 1 << 20);
    EXPECT_GT(mgr.simulatedSeconds(), t0 + 0.75);
}

TEST_F(DeviceTest, ResetStatsPreservesCurrent)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.recordAlloc(Device::gpu(0), 4096);
    mgr.resetStats();
    MemoryStats s = mgr.stats(Device::gpu(0));
    EXPECT_EQ(s.currentBytes, 4096);
    EXPECT_EQ(s.peakBytes, 4096); // peak restarts at current
    EXPECT_EQ(s.totalAllocs, 0);
    EXPECT_EQ(mgr.ledger().totalTransactions(), 0);
    mgr.recordFree(Device::gpu(0), 4096);
}

TEST_F(DeviceTest, StatsScopeMeasuresDelta)
{
    StatsScope scope(Device::gpu(0));
    {
        Tensor t = Tensor::zeros({1024}, DType::kF32, Device::gpu(0));
        EXPECT_EQ(scope.currentDelta(), 4096);
    }
    EXPECT_EQ(scope.currentDelta(), 0);
    EXPECT_GE(scope.peakDelta(), 4096);
}

} // namespace
} // namespace edkm
