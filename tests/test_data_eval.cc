/**
 * @file
 * Data and evaluation harness tests: corpus determinism, batching, the
 * MC suite construction, likelihood scoring, and model-size accounting
 * (including the paper's projected-7B GB column).
 */

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/tokenizer.h"
#include "eval/compress.h"
#include "eval/mc_harness.h"
#include "eval/train.h"
#include "util/rng.h"

namespace edkm {
namespace {

using data::ByteTokenizer;
using data::Example;
using data::SyntheticCorpus;
using data::TaskFamily;

TEST(Tokenizer, RoundTrip)
{
    ByteTokenizer tok;
    std::string s = "Instruction: add 3 and 4\nResponse: 7\n";
    EXPECT_EQ(tok.decode(tok.encode(s)), s);
    EXPECT_EQ(tok.encode(s).size(), s.size());
}

TEST(Corpus, DeterministicUnderSeed)
{
    SyntheticCorpus c1(7), c2(7);
    EXPECT_EQ(c1.words(), c2.words());
    auto e1 = c1.generate(20, 3);
    auto e2 = c2.generate(20, 3);
    ASSERT_EQ(e1.size(), e2.size());
    for (size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].prompt, e2[i].prompt);
        EXPECT_EQ(e1[i].response, e2[i].response);
    }
}

TEST(Corpus, ExamplesAreWellFormed)
{
    SyntheticCorpus corpus(7);
    Rng rng(1);
    for (int f = 0; f < 6; ++f) {
        Example ex = corpus.makeExample(static_cast<TaskFamily>(f), rng);
        EXPECT_NE(ex.prompt.find("Instruction:"), std::string::npos);
        EXPECT_NE(ex.prompt.find("Response: "), std::string::npos);
        EXPECT_FALSE(ex.response.empty());
        EXPECT_EQ(ex.response.back(), '\n');
    }
    // Arithmetic answers are actually correct.
    Example add = corpus.makeExample(TaskFamily::kArithEasy, rng);
    size_t p1 = add.prompt.find("add ") + 4;
    size_t p2 = add.prompt.find(" and ");
    int a = std::stoi(add.prompt.substr(p1, p2 - p1));
    int b = std::stoi(add.prompt.substr(p2 + 5));
    EXPECT_EQ(std::stoi(add.response), a + b);
}

TEST(Corpus, StreamAndBatch)
{
    SyntheticCorpus corpus(7);
    ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(50, 5), tok);
    EXPECT_GT(stream.size(), 500u);
    Rng rng(2);
    data::LmBatch batch =
        SyntheticCorpus::sampleBatch(stream, 4, 16, rng);
    EXPECT_EQ(batch.tokens.shape(), (Shape{4, 16}));
    EXPECT_EQ(batch.targets.shape(), (Shape{64}));
    // Targets are the next tokens.
    EXPECT_EQ(batch.targets.flatAtInt(0), batch.tokens.flatAtInt(1));
}

TEST(McSuite, BuildsSevenTasks)
{
    SyntheticCorpus corpus(7);
    auto tasks = eval::buildSyntheticSuite(corpus, 10, 99);
    ASSERT_EQ(tasks.size(), 7u);
    EXPECT_EQ(tasks[0].name, "synth_piqa");
    EXPECT_EQ(tasks[5].name, "synth_triviaqa");
    EXPECT_EQ(tasks[5].fewshot, 1);
    EXPECT_EQ(tasks[6].fewshot, 5);
    for (const auto &task : tasks) {
        EXPECT_EQ(task.items.size(), 10u);
        for (const auto &item : task.items) {
            EXPECT_GE(item.options.size(), 2u);
            EXPECT_GE(item.answer, 0);
            EXPECT_LT(item.answer,
                      static_cast<int>(item.options.size()));
            // Options are distinct.
            for (size_t i = 0; i < item.options.size(); ++i) {
                for (size_t j = i + 1; j < item.options.size(); ++j) {
                    EXPECT_NE(item.options[i], item.options[j]);
                }
            }
        }
    }
}

TEST(McSuite, FewShotPrefixPresent)
{
    SyntheticCorpus corpus(7);
    auto tasks = eval::buildSyntheticSuite(corpus, 3, 100);
    const eval::McTask &trivia = tasks[5];
    // One-shot: the context contains two "Instruction:" occurrences.
    const std::string &ctx = trivia.items[0].context;
    size_t first = ctx.find("Instruction:");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(ctx.find("Instruction:", first + 1), std::string::npos);
}

TEST(McScoring, PrefersLikelyOption)
{
    // An untrained model is near-uniform; after a few steps on a
    // single repeated string it must assign it higher likelihood.
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    nn::MiniLlama model(cfg);
    ByteTokenizer tok;

    std::string ctx = "Instruction: repeat the word bola\nResponse: ";
    std::string memorised = ctx + "bola\n";
    std::vector<int64_t> stream;
    for (int i = 0; i < 40; ++i) {
        auto t = tok.encode(memorised);
        stream.insert(stream.end(), t.begin(), t.end());
    }
    eval::TrainConfig tc;
    tc.steps = 60;
    tc.batch = 4;
    tc.seq = 32;
    tc.optimizer.lr = 3e-3f;
    eval::trainLm(model, stream, tc);

    double good = eval::scoreOption(model, tok, ctx, "bola\n");
    double bad = eval::scoreOption(model, tok, ctx, "zzzz\n");
    EXPECT_GT(good, bad);
}

TEST(Train, LossDecreases)
{
    SyntheticCorpus corpus(7);
    ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(200, 5), tok);
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    nn::MiniLlama model(cfg);
    eval::TrainConfig tc;
    tc.steps = 40;
    tc.batch = 4;
    tc.seq = 32;
    tc.optimizer.lr = 3e-3f;
    eval::TrainReport report = eval::trainLm(model, stream, tc);
    EXPECT_LT(report.lastLoss, report.firstLoss);
    float ppl = eval::perplexity(model, stream, 2, 32, 3);
    EXPECT_GT(ppl, 1.0f);
    EXPECT_LT(ppl, 256.0f); // better than uniform over bytes
}

TEST(SizeAccounting, ProjectedGbMatchesPaperAnchors)
{
    // FP16 at 6.74B params ~ 12.55 GiB (paper: 12.6 GB).
    EXPECT_NEAR(eval::projectedGb(16.0), 12.55, 0.1);
    // 3-bit palettized + small LUT overhead ~ 2.5 GB (paper: eDKM row).
    EXPECT_NEAR(eval::projectedGb(3.0), 2.35, 0.1);
    // 4-bit g128 (4.25 effective bits) ~ 3.3-3.7 GB band.
    double g128 = eval::projectedGb(4.0 + 32.0 / 128.0);
    EXPECT_GT(g128, 3.0);
    EXPECT_LT(g128, 3.8);
}

TEST(SizeAccounting, SchemesOrderCorrectly)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 1;
    nn::MiniLlama m16(cfg);
    eval::SizeReport fp16 = eval::fp16Size(m16);
    EXPECT_NEAR(fp16.bitsPerWeight, 16.0, 1e-6);

    nn::MiniLlama m4(cfg);
    eval::SizeReport rtn4 = eval::applyRtn(m4, 4, 32);
    nn::MiniLlama m3(cfg);
    eval::SizeReport rtn3 = eval::applyRtn(m3, 3, 32);
    EXPECT_LT(rtn4.payloadBytes, fp16.payloadBytes);
    EXPECT_LT(rtn3.payloadBytes, rtn4.payloadBytes);
    EXPECT_GT(rtn3.projectedGb7B, 0.0);
}

} // namespace
} // namespace edkm
