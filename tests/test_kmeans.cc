/**
 * @file
 * Tests for weighted 1-D k-means (warm start + palettization backend).
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "core/kmeans.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

TEST(KMeans, RecoversWellSeparatedClusters)
{
    Rng rng(11);
    std::vector<float> values;
    for (int i = 0; i < 200; ++i) {
        values.push_back(-5.0f + rng.normal(0.0f, 0.05f));
        values.push_back(0.0f + rng.normal(0.0f, 0.05f));
        values.push_back(5.0f + rng.normal(0.0f, 0.05f));
    }
    KMeansResult r = kmeans1d(values, {}, 3, rng);
    ASSERT_EQ(r.centroids.size(), 3u);
    EXPECT_NEAR(r.centroids[0], -5.0f, 0.2f);
    EXPECT_NEAR(r.centroids[1], 0.0f, 0.2f);
    EXPECT_NEAR(r.centroids[2], 5.0f, 0.2f);
    // Inertia reflects the small in-cluster variance.
    EXPECT_LT(r.inertia / values.size(), 0.01);
}

TEST(KMeans, WeightedEqualsRepeated)
{
    // kmeans on (values, counts) must give the same Lloyd fixed point as
    // kmeans on the expanded multiset.
    Rng rng1(3), rng2(3);
    std::vector<float> unique_vals = {-2.0f, -1.0f, 1.0f, 2.5f, 4.0f};
    std::vector<float> counts = {50, 1, 30, 5, 20};
    std::vector<float> expanded;
    for (size_t i = 0; i < unique_vals.size(); ++i) {
        for (int c = 0; c < static_cast<int>(counts[i]); ++c) {
            expanded.push_back(unique_vals[i]);
        }
    }
    KMeansResult a = kmeans1d(unique_vals, counts, 2, rng1, 50);
    KMeansResult b = kmeans1d(expanded, {}, 2, rng2, 50);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(a.centroids[i], b.centroids[i], 1e-3);
    }
    EXPECT_NEAR(a.inertia, b.inertia, 1e-2);
}

TEST(KMeans, KOne)
{
    Rng rng(7);
    std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
    KMeansResult r = kmeans1d(v, {}, 1, rng);
    EXPECT_NEAR(r.centroids[0], 2.5f, 1e-5);
    for (int32_t a : r.assignments) {
        EXPECT_EQ(a, 0);
    }
}

TEST(KMeans, MoreCentroidsThanDistinctValues)
{
    Rng rng(9);
    std::vector<float> v = {1.0f, 1.0f, 2.0f};
    KMeansResult r = kmeans1d(v, {}, 8, rng);
    EXPECT_EQ(r.centroids.size(), 8u);
    // Every point should be represented exactly.
    EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeans, CentroidsSorted)
{
    Rng rng(13);
    std::vector<float> v;
    for (int i = 0; i < 500; ++i) {
        v.push_back(rng.normal());
    }
    KMeansResult r = kmeans1d(v, {}, 8, rng);
    EXPECT_TRUE(std::is_sorted(r.centroids.begin(), r.centroids.end()));
}

TEST(KMeans, AssignmentsAreNearest)
{
    Rng rng(17);
    std::vector<float> v;
    for (int i = 0; i < 300; ++i) {
        v.push_back(rng.uniform(-3.0f, 3.0f));
    }
    KMeansResult r = kmeans1d(v, {}, 4, rng);
    for (size_t i = 0; i < v.size(); ++i) {
        float d_assigned =
            std::fabs(v[i] - r.centroids[static_cast<size_t>(
                                 r.assignments[i])]);
        for (float c : r.centroids) {
            EXPECT_LE(d_assigned, std::fabs(v[i] - c) + 1e-6);
        }
    }
}

TEST(KMeans, NearestCentroidBinarySearch)
{
    std::vector<float> c = {-1.0f, 0.0f, 2.0f, 10.0f};
    EXPECT_EQ(nearestCentroid(c, -5.0f), 0);
    EXPECT_EQ(nearestCentroid(c, -0.4f), 1);
    EXPECT_EQ(nearestCentroid(c, 0.9f), 1);
    EXPECT_EQ(nearestCentroid(c, 1.1f), 2);
    EXPECT_EQ(nearestCentroid(c, 100.0f), 3);
    EXPECT_EQ(nearestCentroid(c, 2.0f), 2); // exact hit
}

TEST(KMeans, DeterministicUnderSeed)
{
    std::vector<float> v;
    Rng data_rng(21);
    for (int i = 0; i < 100; ++i) {
        v.push_back(data_rng.normal());
    }
    Rng a(5), b(5);
    KMeansResult ra = kmeans1d(v, {}, 4, a);
    KMeansResult rb = kmeans1d(v, {}, 4, b);
    EXPECT_EQ(ra.centroids, rb.centroids);
    EXPECT_EQ(ra.assignments, rb.assignments);
}

TEST(KMeans, InvalidInputsFatal)
{
    Rng rng(1);
    std::vector<float> v = {1.0f};
    EXPECT_THROW(kmeans1d({}, {}, 2, rng), FatalError);
    EXPECT_THROW(kmeans1d(v, {}, 0, rng), FatalError);
    EXPECT_THROW(kmeans1d(v, {1.0f, 2.0f}, 1, rng), FatalError);
}

} // namespace
} // namespace edkm
