/**
 * @file
 * Tests for cross-device tensor marshaling (paper section 2.1): the
 * Table 1 / Fig 2 duplicate-copy scenario, graph-walk detection at
 * various hop depths, op-trace replay correctness, and the alternative
 * detection strategies.
 */

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace edkm {
namespace {

class MarshalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }

    MarshalConfig
    cfg(MarshalConfig::Detection det, int hops = 4)
    {
        MarshalConfig c;
        c.detection = det;
        c.maxHops = hops;
        c.minOffloadBytes = 1; // everything offloads in tests
        return c;
    }

    Rng rng{77};
};

TEST_F(MarshalTest, Fig2Scenario)
{
    // x0 on GPU; save x0 and its view x1. Without marshaling both copy
    // to CPU (Table 1: 8 MB); with graph-walk detection the view is a
    // reference (4 MB).
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x0(Tensor::rand({64, 64}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});   // storage-invariant
        // square saves its input: x1 first, then the raw x0 (0 hops for
        // the second save of x0's data through mul's saved operands).
        Variable a = af::square(x1);           // saves x1 (copy #1)
        Variable b = af::square(x0);           // saves x0 -> dup of x1!
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    const MarshalStats &s = ctx.stats();
    EXPECT_EQ(s.copies, 1);
    EXPECT_EQ(s.duplicatesAvoided, 1);
    EXPECT_EQ(s.bytesAvoided, 64 * 64 * 4);
    // Only one CPU-resident copy.
    EXPECT_EQ(ctx.residentBytes(), 64 * 64 * 4);
    // Backward succeeds and gradients are correct: d/dx (sum x^2 twice).
    backward(loss);
    Tensor expect = mulScalar(x0.data(), 4.0f);
    EXPECT_TRUE(allclose(x0.grad(), expect, 1e-4f, 1e-5f));
}

TEST_F(MarshalTest, NoDetectionCopiesEverything)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kNone));
    Variable x0(Tensor::rand({32, 32}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});
        Variable a = af::square(x1);
        Variable b = af::square(x0);
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    EXPECT_EQ(ctx.stats().copies, 2);
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 0);
    EXPECT_EQ(ctx.residentBytes(), 2 * 32 * 32 * 4);
    backward(loss); // still correct, just more traffic
    EXPECT_TRUE(allclose(x0.grad(), mulScalar(x0.data(), 4.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, TransposeDetectedAtOneHop)
{
    // softmax saves its output A; a matmul then saves A^T (a transpose
    // view) -- the walk resolves A^T -> A through one hop.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({8, 8}, rng, Device::gpu(0)), true);
    Variable w(Tensor::rand({8, 1}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable a = af::softmaxLastDim(x); // saves A
        Variable at = af::transpose(a, 0, 1);
        Variable y = af::matmul(at, w);     // saves A^T and w
        loss = af::sumAll(y);
    }
    EXPECT_GE(ctx.stats().duplicatesAvoided, 1);
    backward(loss);
    EXPECT_TRUE(x.grad().defined());
    EXPECT_TRUE(w.grad().defined());
}

TEST_F(MarshalTest, ZeroHopsDisablesWalkDetection)
{
    // With maxHops=0 only the exact same variable is detected; the
    // transpose case needs one hop and now copies.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk, 0));
    Variable x(Tensor::rand({8, 8}, rng, Device::gpu(0)), true);
    Variable w(Tensor::rand({8, 1}, rng, Device::gpu(0)), true);
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable a = af::softmaxLastDim(x);
        Variable y = af::matmul(af::transpose(a, 0, 1), w);
        af::sumAll(y);
    }
    // A and A^T both copied (plus w): no transpose dedup at 0 hops.
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 0);
    EXPECT_GE(ctx.stats().copies, 3);
}

TEST_F(MarshalTest, MultiHopChainDetected)
{
    // x -> view -> transpose -> view: the deepest save is 3 hops from
    // the first-saved tensor.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk, 4));
    Variable x(Tensor::rand({4, 6}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x);            // saves x
        Variable v = af::view(x, {6, 4});
        Variable t = af::transpose(v, 0, 1);
        Variable u = af::view(af::contiguous(t), {24, 1});
        // contiguous breaks the chain; use a direct chain instead:
        Variable t2 = af::transpose(v, 0, 1);
        Variable s2 = af::square(t2);           // saves t2: 2 hops to x
        loss = af::add(af::sumAll(s1),
                       af::add(af::sumAll(s2), af::sumAll(u)));
    }
    EXPECT_GE(ctx.stats().duplicatesAvoided, 1);
    backward(loss);
    EXPECT_TRUE(x.grad().defined());
}

TEST_F(MarshalTest, HopBoundRespected)
{
    // Chain longer than maxHops must NOT be detected.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk, 1));
    Variable x(Tensor::rand({4, 6}, rng, Device::gpu(0)), true);
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x); // saves x (registers x)
        // 2 view hops away from x:
        Variable v = af::view(x, {6, 4});
        Variable t = af::transpose(v, 0, 1);
        Variable s2 = af::square(t); // saves t
        af::add(af::sumAll(s1), af::sumAll(s2));
    }
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 0);
    EXPECT_EQ(ctx.stats().copies, 2);
}

TEST_F(MarshalTest, TraceReplayReconstructsExactContent)
{
    // The unpacked tensor after a reference + op-trace must be
    // bit-identical to the original saved view.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({6, 4}, rng, Device::gpu(0)), true);
    Variable loss;
    Tensor t_data;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x);        // saves x, registers it
        Variable t = af::transpose(x, 0, 1);
        t_data = t.data().contiguous();     // ground truth [4,6]
        Variable s2 = af::square(t);        // saves t as reference+trace
        loss = af::add(af::sumAll(s1), af::sumAll(s2));
    }
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 1);
    // Backward unpacks the trace; gradient of sum(x^2)+sum((x^T)^2) is
    // 4x, identical to the no-marshal case -> replay was exact.
    backward(loss);
    EXPECT_TRUE(allclose(x.grad(), mulScalar(x.data(), 4.0f), 1e-4f,
                         1e-5f));
    EXPECT_GE(ctx.stats().unpacks, 2);
}

TEST_F(MarshalTest, SliceTraceReplaysProducerDirection)
{
    // Save full x first, then a slice of x: walk goes consumer->producer
    // (slice is lossy, so only the producer direction can replay it).
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({6, 4}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x);              // registers x
        Variable sl = af::slice(x, 0, 1, 5);      // [4,4] view
        Variable s2 = af::square(sl);             // saves slice
        loss = af::add(af::sumAll(s1), af::sumAll(s2));
    }
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 1);
    backward(loss);
    // grad = 2x everywhere + extra 2x inside the slice region.
    Tensor g = x.grad();
    EXPECT_NEAR(g.at({0, 0}), 2.0f * x.data().at({0, 0}), 1e-4);
    EXPECT_NEAR(g.at({2, 1}), 4.0f * x.data().at({2, 1}), 1e-4);
}

TEST_F(MarshalTest, StorageIdModeDetectsAllAliases)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kStorageId));
    Variable x(Tensor::rand({8, 8}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x);
        Variable t = af::transpose(x, 0, 1);
        Variable s2 = af::square(t); // same storage id -> reference
        loss = af::add(af::sumAll(s1), af::sumAll(s2));
    }
    EXPECT_EQ(ctx.stats().copies, 1);
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 1);
    backward(loss);
    EXPECT_TRUE(allclose(x.grad(), mulScalar(x.data(), 4.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, OffloadMovesBytesOffGpu)
{
    // With offload, dropping forward temporaries releases GPU memory;
    // the saved payload lives on the CPU until backward.
    DeviceManager &mgr = DeviceManager::instance();
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({64, 64}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable y = af::softmaxLastDim(x); // saves y (offloaded)
        loss = af::sumAll(y);
    }
    // y's GPU tensor is gone (only x + small loss remain); the CPU holds
    // the saved copy.
    EXPECT_EQ(ctx.residentBytes(), 64 * 64 * 4);
    EXPECT_GE(mgr.ledger().d2hTransactions, 1);
    int64_t gpu_now = mgr.stats(Device::gpu(0)).currentBytes;
    EXPECT_LT(gpu_now, 2 * 64 * 64 * 4); // x + scalar, not x + y
    backward(loss);
    EXPECT_GE(mgr.ledger().h2dTransactions, 1); // unpack restored to GPU
}

TEST_F(MarshalTest, OffloadDisabledRetainsOnDevice)
{
    MarshalConfig c = cfg(MarshalConfig::Detection::kGraphWalk);
    c.offloadEnabled = false;
    MarshalContext ctx(c);
    Variable x(Tensor::rand({16, 16}, rng, Device::gpu(0)), true);
    {
        SavedTensorHooksGuard guard(&ctx);
        af::sumAll(af::square(x));
    }
    EXPECT_EQ(ctx.stats().copies, 0);
    EXPECT_EQ(ctx.stats().passthroughs, 1);
    EXPECT_EQ(DeviceManager::instance().ledger().d2hTransactions, 0);
}

TEST_F(MarshalTest, SmallTensorsPassThrough)
{
    MarshalConfig c = cfg(MarshalConfig::Detection::kGraphWalk);
    c.minOffloadBytes = 1 << 20; // 1 MB threshold
    MarshalContext ctx(c);
    Variable x(Tensor::rand({4, 4}, rng, Device::gpu(0)), true);
    {
        SavedTensorHooksGuard guard(&ctx);
        af::sumAll(af::square(x));
    }
    EXPECT_EQ(ctx.stats().copies, 0);
    EXPECT_EQ(ctx.stats().passthroughs, 1);
}

TEST_F(MarshalTest, CpuTensorsNeverOffload)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({16, 16}, rng, Device::cpu()), true);
    {
        SavedTensorHooksGuard guard(&ctx);
        af::sumAll(af::square(x));
    }
    EXPECT_EQ(ctx.stats().copies, 0);
    EXPECT_EQ(DeviceManager::instance().ledger().totalTransactions(), 0);
}

TEST_F(MarshalTest, RegistryEntriesDieWithGraph)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({32, 32}, rng, Device::gpu(0)), true);
    {
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(x));
        }
        EXPECT_EQ(ctx.residentBytes(), 32 * 32 * 4);
        backward(loss);
    }
    // Graph (and its saved handles) destroyed -> CPU copy released.
    EXPECT_EQ(ctx.residentBytes(), 0);
}

TEST_F(MarshalTest, AsyncOffloadMatchesSyncBehaviour)
{
    // Same Fig 2 scenario, but copies ride the runtime queue: counters
    // and gradients must match the synchronous path after sync().
    MarshalConfig c = cfg(MarshalConfig::Detection::kGraphWalk);
    c.asyncOffload = true;
    MarshalContext ctx(c);
    Variable x0(Tensor::rand({64, 64}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});
        Variable a = af::square(x1);
        Variable b = af::square(x0);
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    ctx.sync();
    EXPECT_EQ(ctx.pendingCopies(), 0);
    const MarshalStats &s = ctx.stats();
    EXPECT_EQ(s.copies, 1);
    EXPECT_EQ(s.duplicatesAvoided, 1);
    EXPECT_EQ(s.asyncCopies, 1);
    EXPECT_EQ(ctx.residentBytes(), 64 * 64 * 4);
    backward(loss); // unpack joins per entry even without sync()
    EXPECT_TRUE(allclose(x0.grad(), mulScalar(x0.data(), 4.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, AsyncStorageIdModeDefersViewReconstruction)
{
    MarshalConfig c = cfg(MarshalConfig::Detection::kStorageId);
    c.asyncOffload = true;
    MarshalContext ctx(c);
    Variable x(Tensor::rand({8, 8}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable s1 = af::square(x);
        Variable t = af::transpose(x, 0, 1);
        Variable s2 = af::square(t); // same storage -> deferred view
        loss = af::add(af::sumAll(s1), af::sumAll(s2));
    }
    EXPECT_EQ(ctx.stats().copies, 1);
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 1);
    backward(loss);
    EXPECT_TRUE(allclose(x.grad(), mulScalar(x.data(), 4.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, OffloadAsyncPrefetchDedupsLaterSaves)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable x(Tensor::rand({32, 32}, rng, Device::gpu(0)), true);
    // Prefetch x's storage before the forward ever saves it.
    ctx.offloadAsync(x.data());
    ctx.sync();
    EXPECT_EQ(ctx.stats().copies, 1);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable a = af::square(x);            // saves x -> prefetch hit
        Variable t = af::transpose(x, 0, 1);
        Variable b = af::square(t);            // view of x -> hit too
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    EXPECT_EQ(ctx.stats().copies, 1); // no new copies
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 2);
    backward(loss);
    EXPECT_TRUE(allclose(x.grad(), mulScalar(x.data(), 4.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, DoubleBufferRecyclesOffloadStorage)
{
    MarshalConfig c = cfg(MarshalConfig::Detection::kStorageId);
    c.doubleBuffer = true;
    MarshalContext ctx(c);
    // Steady-state loop: one same-sized prefetch per iteration, none of
    // them saved — from the third offload on, the storage rotated out
    // of the two-deep window is recycled instead of reallocated.
    for (int i = 0; i < 5; ++i) {
        Tensor t = Tensor::rand({64, 64}, rng, Device::gpu(0));
        ctx.offloadAsync(t);
    }
    ctx.sync();
    EXPECT_EQ(ctx.stats().copies, 5);
    EXPECT_EQ(ctx.stats().bufferReuses, 3);
    // Window is bounded: exactly two snapshots stay resident.
    EXPECT_EQ(ctx.residentBytes(), 2 * 64 * 64 * 4);
}

TEST_F(MarshalTest, DoubleBufferOffByDefaultNeverRecycles)
{
    MarshalContext ctx(cfg(MarshalConfig::Detection::kStorageId));
    for (int i = 0; i < 4; ++i) {
        Tensor t = Tensor::rand({32, 32}, rng, Device::gpu(0));
        ctx.offloadAsync(t);
    }
    ctx.sync();
    EXPECT_EQ(ctx.stats().bufferReuses, 0);
    EXPECT_EQ(ctx.residentBytes(), 4 * 32 * 32 * 4);
}

TEST_F(MarshalTest, DoubleBufferSkipsReuseWhileSnapshotReferenced)
{
    MarshalConfig c = cfg(MarshalConfig::Detection::kStorageId);
    c.doubleBuffer = true;
    MarshalContext ctx(c);

    // Save a view of the first prefetched tensor: its snapshot is
    // referenced by a live pack handle, so the rotation must NOT steal
    // that storage — unpack must still see the original bytes.
    Variable x(Tensor::rand({16, 16}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        ctx.offloadAsync(x.data());
        loss = af::sumAll(af::square(x)); // saves x -> prefetch hit
    }
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 1);
    for (int i = 0; i < 3; ++i) {
        Tensor t = Tensor::rand({16, 16}, rng, Device::gpu(0));
        ctx.offloadAsync(t);
    }
    ctx.sync();
    // The rotation that would have stolen x's snapshot skipped it; the
    // later unreferenced snapshots still recycle among themselves.
    backward(loss);
    EXPECT_TRUE(allclose(x.grad(), mulScalar(x.data(), 2.0f), 1e-4f,
                         1e-5f));
}

TEST_F(MarshalTest, DoubleBufferAsyncMatchesSync)
{
    for (bool async : {false, true}) {
        MarshalConfig c = cfg(MarshalConfig::Detection::kStorageId);
        c.doubleBuffer = true;
        c.asyncOffload = async;
        MarshalContext ctx(c);
        Tensor last;
        for (int i = 0; i < 4; ++i) {
            last = Tensor::rand({48, 48}, rng, Device::gpu(0));
            ctx.offloadAsync(last);
        }
        ctx.sync();
        EXPECT_EQ(ctx.stats().copies, 4) << "async=" << async;
        EXPECT_GE(ctx.stats().bufferReuses, async ? 1 : 2)
            << "async=" << async;
        // The newest snapshot still dedups a save of its tensor.
        Variable v(last, true);
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(v));
        }
        EXPECT_EQ(ctx.stats().duplicatesAvoided, 1) << "async=" << async;
        backward(loss);
        EXPECT_TRUE(allclose(v.grad(), mulScalar(last, 2.0f), 1e-4f,
                             1e-5f));
    }
}

TEST_F(MarshalTest, CrossIterationDedupOfReusedInput)
{
    // The same weight variable saved in every "iteration" (as in the
    // DKM loop) copies once and references afterwards.
    MarshalContext ctx(cfg(MarshalConfig::Detection::kGraphWalk));
    Variable w(Tensor::rand({32, 1}, rng, Device::gpu(0)), true);
    Variable acc;
    {
        SavedTensorHooksGuard guard(&ctx);
        for (int i = 0; i < 5; ++i) {
            Variable term = af::sumAll(af::square(w)); // saves w each time
            acc = acc.defined() ? af::add(acc, term) : term;
        }
    }
    EXPECT_EQ(ctx.stats().copies, 1);
    EXPECT_EQ(ctx.stats().duplicatesAvoided, 4);
    backward(acc);
    EXPECT_TRUE(allclose(w.grad(), mulScalar(w.data(), 10.0f), 1e-4f,
                         1e-5f));
}

} // namespace
} // namespace edkm
