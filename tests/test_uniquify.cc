/**
 * @file
 * Tests for weight uniquification (paper section 2.2): lossless
 * decomposition of 16-bit weights into unique values + index list.
 */

#include <gtest/gtest.h>

#include "core/uniquify.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace edkm {
namespace {

TEST(Uniquify, ExactOnBf16Data)
{
    // Weights already on the bf16 grid reconstruct bit-exactly.
    Rng rng(1);
    Tensor w = Tensor::randn({64, 32}, rng, Device::cpu(), 0.02f);
    w = w.to(DType::kBf16).to(DType::kF32);
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    Tensor rec = dec.reconstruct();
    EXPECT_EQ(maxAbsDiff(rec, w.view({w.numel()})), 0.0f);
}

TEST(Uniquify, CountsSumToNumel)
{
    Rng rng(2);
    Tensor w = Tensor::randn({100}, rng);
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    double total = 0;
    for (float c : dec.counts) {
        total += c;
    }
    EXPECT_EQ(static_cast<int64_t>(total), 100);
    EXPECT_EQ(dec.numel, 100);
    EXPECT_EQ(dec.indexList.numel(), 100);
    EXPECT_EQ(dec.indexList.dtype(), DType::kU16);
}

TEST(Uniquify, DuplicatesShareRows)
{
    Tensor w = Tensor::fromVector({1.0f, 2.0f, 1.0f, 1.0f, 2.0f}, {5});
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    EXPECT_EQ(dec.uniqueCount(), 2);
    // wi and wk with the same bit value share the index (paper Fig 3).
    EXPECT_EQ(dec.indexList.flatAtInt(0), dec.indexList.flatAtInt(2));
    EXPECT_EQ(dec.indexList.flatAtInt(0), dec.indexList.flatAtInt(3));
    EXPECT_EQ(dec.indexList.flatAtInt(1), dec.indexList.flatAtInt(4));
    EXPECT_NE(dec.indexList.flatAtInt(0), dec.indexList.flatAtInt(1));
    EXPECT_EQ(dec.counts[static_cast<size_t>(
                  dec.indexList.flatAtInt(0))],
              3.0f);
}

TEST(Uniquify, BucketsByHalfPrecision)
{
    // Two floats that collide in bf16 but differ in f32 share a bucket.
    float a = 1.0f;
    float b = 1.0f + 1e-6f; // far below bf16 resolution
    Tensor w = Tensor::fromVector({a, b}, {2});
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    EXPECT_EQ(dec.uniqueCount(), 1);
    // FP16 has more mantissa bits but still collides at 1e-6.
    UniqueDecomposition dec16 = uniquify(w, HalfKind::kFp16);
    EXPECT_EQ(dec16.uniqueCount(), 1);
}

TEST(Uniquify, UniqueCountBounded)
{
    // No matter how many weights, at most 2^16 unique rows (paper: "the
    // number of rows in the attention table is at most 65,536").
    Rng rng(3);
    Tensor w = Tensor::randn({200000}, rng);
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    EXPECT_LE(dec.uniqueCount(), 65536);
    // Normal data at this scale has far fewer distinct bf16 patterns
    // than elements.
    EXPECT_LT(dec.uniqueCount(), 65536);
    Tensor rec = dec.reconstruct();
    // Reconstruction equals the bf16 rounding of the input.
    Tensor rounded = w.to(DType::kBf16).to(DType::kF32);
    EXPECT_EQ(maxAbsDiff(rec, rounded.view({w.numel()})), 0.0f);
}

TEST(Uniquify, MapCompressionRatioFormula)
{
    // 1000 weights, 100 unique, 8 centroids:
    // dense = 1000*8*4; packed = 100*8*4 + 1000*2.
    UniqueDecomposition dec;
    dec.numel = 1000;
    dec.values.resize(100);
    EXPECT_NEAR(dec.mapCompressionRatio(8),
                (1000.0 * 8 * 4) / (100.0 * 8 * 4 + 1000.0 * 2), 1e-9);
}

TEST(Uniquify, FirstSeenOrderDeterministic)
{
    Tensor w = Tensor::fromVector({3.0f, 1.0f, 3.0f, 2.0f}, {4});
    UniqueDecomposition dec = uniquify(w, HalfKind::kBf16);
    ASSERT_EQ(dec.uniqueCount(), 3);
    EXPECT_EQ(dec.values[0], 3.0f);
    EXPECT_EQ(dec.values[1], 1.0f);
    EXPECT_EQ(dec.values[2], 2.0f);
}

TEST(Uniquify, WorksOnViews)
{
    Rng rng(4);
    Tensor w = Tensor::randn({8, 8}, rng);
    Tensor wt = w.transpose(0, 1); // non-contiguous
    UniqueDecomposition a = uniquify(w, HalfKind::kBf16);
    UniqueDecomposition b = uniquify(wt, HalfKind::kBf16);
    EXPECT_EQ(a.uniqueCount(), b.uniqueCount());
    EXPECT_EQ(b.numel, 64);
}

} // namespace
} // namespace edkm
