/**
 * @file
 * Tests for the palettized tensor codec: bit packing, round trips,
 * serialisation, and size accounting.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

#include "core/palettize.h"
#include "tensor/ops.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Property sweep over all supported bit widths. */
class PackBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackBitsSweep, RoundTrip)
{
    int bits = GetParam();
    Rng rng(static_cast<uint64_t>(bits));
    std::vector<int32_t> vals;
    for (int i = 0; i < 1000; ++i) {
        vals.push_back(static_cast<int32_t>(
            rng.randint(0, (1 << bits) - 1)));
    }
    std::vector<uint8_t> packed = packBits(vals, bits);
    EXPECT_EQ(packed.size(), (vals.size() * bits + 7) / 8);
    std::vector<int32_t> back =
        unpackBits(packed, bits, static_cast<int64_t>(vals.size()));
    EXPECT_EQ(back, vals);
}

INSTANTIATE_TEST_SUITE_P(Bits, PackBitsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16));

TEST(PackBits, RejectsOutOfRange)
{
    EXPECT_THROW(packBits({8}, 3), FatalError);
    EXPECT_THROW(packBits({-1}, 3), FatalError);
}

TEST(Palettize, FromDenseReconstructionError)
{
    Rng rng(5);
    Tensor w = Tensor::randn({32, 32}, rng, Device::cpu(), 0.02f);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 4, rng);
    Tensor rec = p.decompress();
    EXPECT_EQ(rec.shape(), w.shape());
    // 16 levels over a normal distribution: small but nonzero error.
    float err = maxAbsDiff(rec, w);
    EXPECT_GT(err, 0.0f);
    EXPECT_LT(err, 0.02f); // well within a std
}

TEST(Palettize, MoreBitsLowerError)
{
    Rng rng(6);
    Tensor w = Tensor::randn({64, 16}, rng);
    double prev_mse = 1e30;
    for (int bits : {1, 2, 3, 4, 6}) {
        Rng r2(7);
        PalettizedTensor p = PalettizedTensor::fromDense(w, bits, r2);
        Tensor rec = p.decompress();
        Tensor d = sub(rec, w);
        double mse = sumAll(mul(d, d)).item();
        EXPECT_LT(mse, prev_mse) << bits << " bits";
        prev_mse = mse;
    }
}

TEST(Palettize, SerializeDeserializeRoundTrip)
{
    Rng rng(8);
    Tensor w = Tensor::randn({16, 8}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    std::vector<uint8_t> bytes = p.serialize();
    PalettizedTensor q = PalettizedTensor::deserialize(bytes);
    EXPECT_EQ(q.bits(), 3);
    EXPECT_EQ(q.shape(), p.shape());
    EXPECT_EQ(maxAbsDiff(q.decompress(), p.decompress()), 0.0f);
}

TEST(Palettize, SaveLoadFile)
{
    Rng rng(9);
    Tensor w = Tensor::randn({8, 8}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 2, rng);
    std::string path = "/tmp/edkm_palettize_test.bin";
    p.save(path);
    PalettizedTensor q = PalettizedTensor::load(path);
    EXPECT_EQ(maxAbsDiff(q.decompress(), p.decompress()), 0.0f);
    std::remove(path.c_str());
}

TEST(Palettize, DeserializeRejectsCorruption)
{
    Rng rng(10);
    PalettizedTensor p =
        PalettizedTensor::fromDense(Tensor::randn({4, 4}, rng), 2, rng);
    std::vector<uint8_t> bytes = p.serialize();
    bytes[0] ^= 0xff; // clobber magic
    EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    std::vector<uint8_t> intact = p.serialize();
    std::vector<uint8_t> truncated(intact.begin(), intact.begin() + 8);
    EXPECT_THROW(PalettizedTensor::deserialize(truncated), FatalError);
}

TEST(Palettize, DeserializeRejectsMalformedHeaders)
{
    Rng rng(11);
    PalettizedTensor p =
        PalettizedTensor::fromDense(Tensor::randn({4, 4}, rng), 2, rng);
    std::vector<uint8_t> intact = p.serialize();
    // Layout: magic u32 | bits u32 | rank u32 | dims i64... | lut u32...
    auto poke_u32 = [&](size_t offset, uint32_t v) {
        std::vector<uint8_t> bytes = intact;
        std::memcpy(bytes.data() + offset, &v, 4);
        return bytes;
    };
    // bits out of range (0 and 17).
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(4, 0)),
                 FatalError);
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(4, 17)),
                 FatalError);
    // Absurd rank must fail cleanly, not attempt a huge allocation.
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(8, 0xffffffffu)),
                 FatalError);
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(8, 0)),
                 FatalError);
    // Negative dimension.
    {
        std::vector<uint8_t> bytes = intact;
        int64_t d = -4;
        std::memcpy(bytes.data() + 12, &d, 8);
        EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    }
    // Truncation at every prefix length: never reads out of bounds.
    for (size_t cut = 0; cut < intact.size(); ++cut) {
        std::vector<uint8_t> t(intact.begin(),
                               intact.begin() +
                                   static_cast<int64_t>(cut));
        EXPECT_THROW(PalettizedTensor::deserialize(t), FatalError)
            << "prefix of " << cut << " bytes accepted";
    }
    // Trailing garbage is rejected.
    {
        std::vector<uint8_t> bytes = intact;
        bytes.push_back(0x00);
        EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    }
    // The intact buffer still round-trips.
    PalettizedTensor back = PalettizedTensor::deserialize(intact);
    EXPECT_EQ(back.decompress().toVector(), p.decompress().toVector());
}

TEST(Palettize, LoadRejectsMissingAndCorruptFiles)
{
    EXPECT_THROW(PalettizedTensor::load("/tmp/edkm_does_not_exist.pal"),
                 FatalError);
    std::string path = "/tmp/edkm_corrupt.pal";
    {
        std::ofstream f(path, std::ios::binary);
        f << "not a palettized tensor";
    }
    EXPECT_THROW(PalettizedTensor::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Palettize, BitsPerWeightApproachesNominal)
{
    // For a large tensor the LUT/header overhead vanishes: 3-bit
    // palettization ~3 bits/weight (the paper's 2.5 GB at 7B).
    Rng rng(11);
    Tensor w = Tensor::randn({256, 256}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng, 5);
    EXPECT_NEAR(p.bitsPerWeight(), 3.0, 0.02);
}

TEST(Palettize, LutIsFp16Precision)
{
    Rng rng(12);
    Tensor w = Tensor::randn({32, 32}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    for (float c : p.lut()) {
        EXPECT_EQ(c, roundToFp16(c));
    }
}

TEST(Palettize, FromAssignmentsValidates)
{
    std::vector<float> lut(8, 0.0f);
    std::vector<int32_t> assign(10, 0);
    EXPECT_THROW(PalettizedTensor::fromAssignments({10}, lut, assign, 4),
                 FatalError); // LUT size != 2^bits
    EXPECT_THROW(
        PalettizedTensor::fromAssignments({11}, lut, assign, 3),
        FatalError); // numel mismatch
}

} // namespace
} // namespace edkm
