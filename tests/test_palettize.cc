/**
 * @file
 * Tests for the palettized tensor codec: bit packing, round trips,
 * serialisation, and size accounting.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

#include "core/palettize.h"
#include "tensor/ops.h"
#include "util/half.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Property sweep over all supported bit widths. */
class PackBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackBitsSweep, RoundTrip)
{
    int bits = GetParam();
    Rng rng(static_cast<uint64_t>(bits));
    std::vector<int32_t> vals;
    for (int i = 0; i < 1000; ++i) {
        vals.push_back(static_cast<int32_t>(
            rng.randint(0, (1 << bits) - 1)));
    }
    std::vector<uint8_t> packed = packBits(vals, bits);
    EXPECT_EQ(packed.size(), (vals.size() * bits + 7) / 8);
    std::vector<int32_t> back =
        unpackBits(packed, bits, static_cast<int64_t>(vals.size()));
    EXPECT_EQ(back, vals);
}

INSTANTIATE_TEST_SUITE_P(Bits, PackBitsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16));

TEST(PackBits, RejectsOutOfRange)
{
    EXPECT_THROW(packBits({8}, 3), FatalError);
    EXPECT_THROW(packBits({-1}, 3), FatalError);
}

TEST(Palettize, FromDenseReconstructionError)
{
    Rng rng(5);
    Tensor w = Tensor::randn({32, 32}, rng, Device::cpu(), 0.02f);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 4, rng);
    Tensor rec = p.decompress();
    EXPECT_EQ(rec.shape(), w.shape());
    // 16 levels over a normal distribution: small but nonzero error.
    float err = maxAbsDiff(rec, w);
    EXPECT_GT(err, 0.0f);
    EXPECT_LT(err, 0.02f); // well within a std
}

TEST(Palettize, MoreBitsLowerError)
{
    Rng rng(6);
    Tensor w = Tensor::randn({64, 16}, rng);
    double prev_mse = 1e30;
    for (int bits : {1, 2, 3, 4, 6}) {
        Rng r2(7);
        PalettizedTensor p = PalettizedTensor::fromDense(w, bits, r2);
        Tensor rec = p.decompress();
        Tensor d = sub(rec, w);
        double mse = sumAll(mul(d, d)).item();
        EXPECT_LT(mse, prev_mse) << bits << " bits";
        prev_mse = mse;
    }
}

TEST(Palettize, SerializeDeserializeRoundTrip)
{
    Rng rng(8);
    Tensor w = Tensor::randn({16, 8}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    std::vector<uint8_t> bytes = p.serialize();
    PalettizedTensor q = PalettizedTensor::deserialize(bytes);
    EXPECT_EQ(q.bits(), 3);
    EXPECT_EQ(q.shape(), p.shape());
    EXPECT_EQ(maxAbsDiff(q.decompress(), p.decompress()), 0.0f);
}

TEST(Palettize, SaveLoadFile)
{
    Rng rng(9);
    Tensor w = Tensor::randn({8, 8}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 2, rng);
    std::string path = "/tmp/edkm_palettize_test.bin";
    p.save(path);
    PalettizedTensor q = PalettizedTensor::load(path);
    EXPECT_EQ(maxAbsDiff(q.decompress(), p.decompress()), 0.0f);
    std::remove(path.c_str());
}

TEST(Palettize, DeserializeRejectsCorruption)
{
    Rng rng(10);
    PalettizedTensor p =
        PalettizedTensor::fromDense(Tensor::randn({4, 4}, rng), 2, rng);
    std::vector<uint8_t> bytes = p.serialize();
    bytes[0] ^= 0xff; // clobber magic
    EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    std::vector<uint8_t> intact = p.serialize();
    std::vector<uint8_t> truncated(intact.begin(), intact.begin() + 8);
    EXPECT_THROW(PalettizedTensor::deserialize(truncated), FatalError);
}

TEST(Palettize, DeserializeRejectsMalformedHeaders)
{
    Rng rng(11);
    PalettizedTensor p =
        PalettizedTensor::fromDense(Tensor::randn({4, 4}, rng), 2, rng);
    std::vector<uint8_t> intact = p.serialize();
    // Layout: magic u32 | bits u32 | rank u32 | dims i64... | lut u32...
    auto poke_u32 = [&](size_t offset, uint32_t v) {
        std::vector<uint8_t> bytes = intact;
        std::memcpy(bytes.data() + offset, &v, 4);
        return bytes;
    };
    // bits out of range (0 and 17).
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(4, 0)),
                 FatalError);
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(4, 17)),
                 FatalError);
    // Absurd rank must fail cleanly, not attempt a huge allocation.
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(8, 0xffffffffu)),
                 FatalError);
    EXPECT_THROW(PalettizedTensor::deserialize(poke_u32(8, 0)),
                 FatalError);
    // Negative dimension.
    {
        std::vector<uint8_t> bytes = intact;
        int64_t d = -4;
        std::memcpy(bytes.data() + 12, &d, 8);
        EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    }
    // Truncation at every prefix length: never reads out of bounds.
    for (size_t cut = 0; cut < intact.size(); ++cut) {
        std::vector<uint8_t> t(intact.begin(),
                               intact.begin() +
                                   static_cast<int64_t>(cut));
        EXPECT_THROW(PalettizedTensor::deserialize(t), FatalError)
            << "prefix of " << cut << " bytes accepted";
    }
    // Trailing garbage is rejected.
    {
        std::vector<uint8_t> bytes = intact;
        bytes.push_back(0x00);
        EXPECT_THROW(PalettizedTensor::deserialize(bytes), FatalError);
    }
    // The intact buffer still round-trips.
    PalettizedTensor back = PalettizedTensor::deserialize(intact);
    EXPECT_EQ(back.decompress().toVector(), p.decompress().toVector());
}

TEST(Palettize, LoadRejectsMissingAndCorruptFiles)
{
    EXPECT_THROW(PalettizedTensor::load("/tmp/edkm_does_not_exist.pal"),
                 FatalError);
    std::string path = "/tmp/edkm_corrupt.pal";
    {
        std::ofstream f(path, std::ios::binary);
        f << "not a palettized tensor";
    }
    EXPECT_THROW(PalettizedTensor::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(Palettize, BitsPerWeightApproachesNominal)
{
    // For a large tensor the LUT/header overhead vanishes: 3-bit
    // palettization ~3 bits/weight (the paper's 2.5 GB at 7B).
    Rng rng(11);
    Tensor w = Tensor::randn({256, 256}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng, 5);
    EXPECT_NEAR(p.bitsPerWeight(), 3.0, 0.02);
}

TEST(Palettize, LutIsFp16Precision)
{
    Rng rng(12);
    Tensor w = Tensor::randn({32, 32}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    for (float c : p.lut()) {
        EXPECT_EQ(c, roundToFp16(c));
    }
}

TEST(Palettize, FromAssignmentsValidates)
{
    std::vector<float> lut(8, 0.0f);
    std::vector<int32_t> assign(10, 0);
    EXPECT_THROW(PalettizedTensor::fromAssignments({10}, lut, assign, 4),
                 FatalError); // LUT size != 2^bits
    EXPECT_THROW(
        PalettizedTensor::fromAssignments({11}, lut, assign, 3),
        FatalError); // numel mismatch
}

// ----------------------------------------------------------------------
// Random-access bitstream property tests: unpackBitsAt must agree with
// the bulk decoder at every position, for every width, including the
// trailing partial byte.
// ----------------------------------------------------------------------

TEST_P(PackBitsSweep, RandomAccessMatchesBulkUnpack)
{
    int bits = GetParam();
    Rng rng(static_cast<uint64_t>(100 + bits));
    // 257 elements: for every width except 8/16 the stream ends in a
    // partial byte, and 257 is coprime with the 8-bit byte period.
    const int64_t n = 257;
    std::vector<int32_t> vals;
    for (int64_t i = 0; i < n; ++i) {
        vals.push_back(
            static_cast<int32_t>(rng.randint(0, (1 << bits) - 1)));
    }
    std::vector<uint8_t> packed = packBits(vals, bits);
    std::vector<int32_t> bulk = unpackBits(packed, bits, n);
    for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(unpackBitsAt(packed.data(), bits, i), bulk[i])
            << "bits=" << bits << " i=" << i;
    }
}

TEST(PackBits, RandomAccessMinimalStream)
{
    // A single element occupies only the low bits of byte 0.
    for (int bits : {1, 3, 7, 16}) {
        std::vector<int32_t> one = {(1 << bits) - 1};
        std::vector<uint8_t> packed = packBits(one, bits);
        EXPECT_EQ(unpackBitsAt(packed.data(), bits, 0), one[0])
            << "bits=" << bits;
    }
}

// ----------------------------------------------------------------------
// PaletteView edge geometry: single-row / single-column weights,
// degenerate in==1, an effectively single-cluster LUT, and the maximum
// supported bit width must all decode through paletteMatmulT exactly as
// the dense reference.
// ----------------------------------------------------------------------

namespace {

/** paletteMatmulT vs matmul against the decompressed weight, bitwise. */
void
expectPaletteMatchesDense(const PalettizedTensor &p, uint64_t seed)
{
    int64_t out = p.shape()[0];
    int64_t in = p.shape()[1];
    Rng rng(seed);
    std::vector<float> xv(static_cast<size_t>(in));
    for (float &v : xv) {
        v = rng.bernoulli(0.2) ? 0.0f : rng.uniform(-2.0f, 2.0f);
    }
    Tensor x = Tensor::fromVector(xv, {1, in});
    Tensor got = paletteMatmulT(x, viewOf(p));
    Tensor want = matmul(x, p.decompress().transpose(0, 1));
    ASSERT_EQ(got.shape(), want.shape());
    std::vector<float> g = got.toVector();
    std::vector<float> w = want.toVector();
    ASSERT_EQ(0, std::memcmp(g.data(), w.data(),
                             g.size() * sizeof(float)))
        << "out=" << out << " in=" << in << " bits=" << p.bits();
}

PalettizedTensor
randomPalette(int64_t out, int64_t in, int bits, uint64_t seed)
{
    Rng rng(seed);
    int lut_n = 1 << bits;
    std::vector<float> lut(static_cast<size_t>(lut_n));
    for (float &c : lut) {
        c = rng.uniform(-1.0f, 1.0f);
    }
    std::vector<int32_t> assign(static_cast<size_t>(out * in));
    for (int32_t &a : assign) {
        a = static_cast<int32_t>(rng.randint(0, lut_n - 1));
    }
    return PalettizedTensor::fromAssignments({out, in}, lut, assign,
                                             bits);
}

} // namespace

TEST(Palettize, EdgeGeometrySingleRow)
{
    // out == 1: the matvec fixed-lane path.
    expectPaletteMatchesDense(randomPalette(1, 37, 3, 11), 211);
}

TEST(Palettize, EdgeGeometrySingleColumn)
{
    // in == 1: every output is one mul (or a skipped zero).
    expectPaletteMatchesDense(randomPalette(37, 1, 4, 12), 212);
}

TEST(Palettize, EdgeGeometryOneByOne)
{
    expectPaletteMatchesDense(randomPalette(1, 1, 2, 13), 213);
}

TEST(Palettize, EdgeGeometrySingleClusterLut)
{
    // All assignments hit index 0 — a degenerate one-centroid palette.
    std::vector<float> lut = {0.75f, -123.0f};
    std::vector<int32_t> assign(9 * 5, 0);
    PalettizedTensor p =
        PalettizedTensor::fromAssignments({9, 5}, lut, assign, 1);
    expectPaletteMatchesDense(p, 214);
}

TEST(Palettize, EdgeGeometryMaxBits)
{
    // bits == 16: the widest supported stream; indices span two bytes
    // and the LUT has 65536 entries.
    expectPaletteMatchesDense(randomPalette(5, 33, 16, 15), 215);
}

TEST(Palettize, EdgeGeometryTrailingPartialByte)
{
    // 3-bit stream over 7 x 13 = 91 elements: 273 bits, last byte holds
    // only one bit of payload.
    expectPaletteMatchesDense(randomPalette(7, 13, 3, 16), 216);
}

} // namespace
} // namespace edkm
