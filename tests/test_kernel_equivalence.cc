/**
 * @file
 * Randomized differential harness for the fused palettized decode
 * kernel and cross-backend kernel equivalence.
 *
 * Sweeps seeded random shapes (k, n, bits in {2,3,4}, column alignment
 * offsets, tail lengths not divisible by 8/16) and asserts, via raw
 * float-bit comparison:
 *   - fused kernel vs an independent scalar reference reimplementation,
 *   - every available backend vs the scalar dispatch table (the loops
 *     are table-driven over availableBackends(), so a newly added
 *     backend — e.g. AVX-512 — gets coverage with no test changes),
 *   - fused vs staged paletteMatmulT vs the dense matmul reference,
 *   - 1-thread vs 8-thread decode determinism,
 *   - the EDKM_FAST_MATH variant stays opt-in: the default path is
 *     bit-identical before and after an opt-in round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/palettize.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Restore the global pool to the ambient default on scope exit. */
class ThreadCountScope
{
  public:
    explicit ThreadCountScope(int threads)
    {
        runtime::Runtime::instance().setThreadCount(threads);
    }
    ~ThreadCountScope()
    {
        runtime::Runtime::instance().setThreadCount(
            runtime::Runtime::defaultThreadCount());
    }
};

/** Pin the bit-identity contract path for the scope: the tensor-level
 *  tests assert exact bits, so they must hold even when the process
 *  was started with EDKM_FAST_MATH=1 (the opt-in is allowed to change
 *  results — that is its point — so these tests opt back out). */
class ContractPathScope
{
  public:
    ContractPathScope() : was_(kernels::fastMathEnabled())
    {
        kernels::setFastMath(false);
    }
    ~ContractPathScope() { kernels::setFastMath(was_); }

  private:
    bool was_;
};

/** Random input row with exact zeros sprinkled in (the fused kernel
 *  must replay the staged path's zero skip). */
std::vector<float>
randomRow(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n));
    for (float &x : v) {
        x = rng.uniform(0.0, 1.0) < 0.2 ? 0.0f
                                        : static_cast<float>(
                                              rng.uniform(-3.0, 3.0));
    }
    return v;
}

struct PackedWeight
{
    int64_t rows;
    int64_t k;
    int bits;
    std::vector<float> lut;
    std::vector<uint8_t> packed;
};

PackedWeight
randomPackedWeight(int64_t rows, int64_t k, int bits, uint64_t seed)
{
    Rng rng(seed);
    PackedWeight w;
    w.rows = rows;
    w.k = k;
    w.bits = bits;
    int lut_n = 1 << bits;
    w.lut.resize(static_cast<size_t>(lut_n));
    for (float &c : w.lut) {
        c = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    std::vector<int32_t> idx(static_cast<size_t>(rows * k));
    for (int32_t &i : idx) {
        i = static_cast<int32_t>(rng.randint(0, lut_n - 1));
    }
    w.packed = packBits(idx, bits);
    return w;
}

/** Independent scalar reference: the staged m==1 contract per element —
 *  ascending p, skip x[p] == 0.0f, separate IEEE mul then add. */
std::vector<float>
referenceDot(const std::vector<float> &x, const PackedWeight &w,
             int64_t col0, int64_t cols)
{
    std::vector<float> out(static_cast<size_t>(cols));
    for (int64_t j = 0; j < cols; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < w.k; ++p) {
            float xv = x[static_cast<size_t>(p)];
            if (xv == 0.0f) {
                continue;
            }
            int32_t id = unpackBitsAt(w.packed.data(), w.bits,
                                      (col0 + j) * w.k + p);
            acc = acc + xv * w.lut[static_cast<size_t>(id)];
        }
        out[static_cast<size_t>(j)] = acc;
    }
    return out;
}

void
expectBitsEqual(const std::vector<float> &a, const std::vector<float> &b,
                const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(float)))
        << what;
}

std::vector<float>
tensorBits(const Tensor &t)
{
    return t.toVector();
}

// ---------------------------------------------------------------------
// Fused kernel vs scalar reference, every backend, randomized shapes.
// ---------------------------------------------------------------------

TEST(KernelEquivalence, FusedMatchesReferenceOnEveryBackend)
{
    // Tail lengths deliberately not divisible by 8 or 16, plus
    // exact-lane and sub-lane cases.
    const int64_t kDims[] = {1, 3, 8, 17, 64, 129};
    const int64_t kCols[] = {1, 2, 7, 9, 15, 16, 17, 31, 33, 157};
    const int bitsList[] = {2, 3, 4};
    uint64_t seed = 1234;
    for (int bits : bitsList) {
        for (int64_t k : kDims) {
            for (int64_t cols : kCols) {
                PackedWeight w = randomPackedWeight(cols, k, bits,
                                                    ++seed);
                std::vector<float> x = randomRow(k, ++seed);
                std::vector<float> ref = referenceDot(x, w, 0, cols);
                for (auto b : kernels::availableBackends()) {
                    const kernels::KernelTable &kt = kernels::table(b);
                    std::vector<float> got(static_cast<size_t>(cols),
                                           -1.0f);
                    kt.paletteDotFused(x.data(), k, w.packed.data(),
                                       bits, w.lut.data(), 0, cols,
                                       got.data());
                    expectBitsEqual(
                        ref, got,
                        std::string("fused vs reference, backend=") +
                            kernels::backendName(b) + " bits=" +
                            std::to_string(bits) + " k=" +
                            std::to_string(k) + " cols=" +
                            std::to_string(cols));
                }
            }
        }
    }
}

TEST(KernelEquivalence, FusedColumnOffsetsAndPartialRanges)
{
    // col0 offsets exercise unaligned bitstream starts: with bits=3 and
    // k=33 a column's bit offset takes every value mod 8 across rows.
    PackedWeight w = randomPackedWeight(/*rows=*/64, /*k=*/33,
                                        /*bits=*/3, 99);
    std::vector<float> x = randomRow(33, 77);
    const int64_t offsets[] = {0, 1, 3, 5, 8, 13};
    for (int64_t col0 : offsets) {
        for (int64_t cols : {int64_t{1}, int64_t{9}, int64_t{17},
                             64 - col0}) {
            if (col0 + cols > w.rows) {
                continue;
            }
            std::vector<float> ref = referenceDot(x, w, col0, cols);
            for (auto b : kernels::availableBackends()) {
                std::vector<float> got(static_cast<size_t>(cols));
                kernels::table(b).paletteDotFused(
                    x.data(), w.k, w.packed.data(), w.bits,
                    w.lut.data(), col0, cols, got.data());
                expectBitsEqual(
                    ref, got,
                    std::string("fused offset col0=") +
                        std::to_string(col0) + " cols=" +
                        std::to_string(cols) + " backend=" +
                        kernels::backendName(b));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fused vs staged vs dense paletteMatmulT, tensor level.
// ---------------------------------------------------------------------

TEST(KernelEquivalence, FusedVsStagedVsDenseMatmul)
{
    ContractPathScope contract;
    struct Geometry
    {
        int64_t in, out;
    };
    const Geometry geoms[] = {{17, 9}, {64, 64}, {129, 33}, {8, 157}};
    const int bitsList[] = {2, 3, 4};
    uint64_t seed = 4321;
    for (int bits : bitsList) {
        for (const Geometry &g : geoms) {
            Rng rng(++seed);
            int lut_n = 1 << bits;
            std::vector<float> lut(static_cast<size_t>(lut_n));
            for (float &c : lut) {
                c = static_cast<float>(rng.uniform(-1.5, 1.5));
            }
            std::vector<int32_t> assign(
                static_cast<size_t>(g.in * g.out));
            for (int32_t &a : assign) {
                a = static_cast<int32_t>(rng.randint(0, lut_n - 1));
            }
            PalettizedTensor p = PalettizedTensor::fromAssignments(
                {g.out, g.in}, lut, assign, bits);
            PaletteView v = viewOf(p);

            std::vector<float> xv = randomRow(g.in, ++seed);
            Tensor x = Tensor::fromVector(xv, {1, g.in});

            ASSERT_TRUE(paletteFusedDecodeEnabled());
            int64_t calls0 = paletteFusedCalls();
            Tensor fused = paletteMatmulT(x, v);
            int64_t calls1 = paletteFusedCalls();
            if (g.out > 1) {
                EXPECT_EQ(calls1, calls0 + 1)
                    << "fused path not taken for out=" << g.out;
            }
            Tensor staged = paletteMatmulTStaged(x, v);
            Tensor dense = matmul(x, p.decompress().transpose(0, 1));

            expectBitsEqual(tensorBits(staged), tensorBits(fused),
                            "fused vs staged");
            expectBitsEqual(tensorBits(dense), tensorBits(fused),
                            "fused vs dense matmul");
        }
    }
}

TEST(KernelEquivalence, FusedPathFallbacks)
{
    ContractPathScope contract;
    PackedWeight w = randomPackedWeight(24, 16, 3, 5150);
    PalettizedTensor p;
    {
        Rng rng(5151);
        std::vector<int32_t> assign(24 * 16);
        for (int32_t &a : assign) {
            a = static_cast<int32_t>(rng.randint(0, 7));
        }
        p = PalettizedTensor::fromAssignments({24, 16}, w.lut, assign,
                                              3);
    }
    PaletteView v = viewOf(p);

    // m > 1 goes staged: the fused counter must not move.
    Tensor x2 = Tensor::fromVector(randomRow(32, 6), {2, 16});
    int64_t c0 = paletteFusedCalls();
    Tensor viaM2 = paletteMatmulT(x2, v);
    EXPECT_EQ(paletteFusedCalls(), c0);

    // out == 1 goes staged (matvec accumulation order differs).
    PalettizedTensor p1;
    {
        Rng rng(5152);
        std::vector<int32_t> assign(16);
        for (int32_t &a : assign) {
            a = static_cast<int32_t>(rng.randint(0, 7));
        }
        p1 = PalettizedTensor::fromAssignments({1, 16}, w.lut, assign,
                                               3);
    }
    Tensor x1 = Tensor::fromVector(randomRow(16, 7), {1, 16});
    c0 = paletteFusedCalls();
    Tensor via1 = paletteMatmulT(x1, viewOf(p1));
    EXPECT_EQ(paletteFusedCalls(), c0);

    // Kill switch: disabled -> staged, bit-identical, counter still.
    Tensor xm = Tensor::fromVector(randomRow(16, 8), {1, 16});
    Tensor fused = paletteMatmulT(xm, v);
    setPaletteFusedDecode(false);
    c0 = paletteFusedCalls();
    Tensor staged = paletteMatmulT(xm, v);
    EXPECT_EQ(paletteFusedCalls(), c0);
    setPaletteFusedDecode(true);
    expectBitsEqual(tensorBits(fused), tensorBits(staged),
                    "kill switch path");
}

// ---------------------------------------------------------------------
// Thread-count determinism of the fused decode.
// ---------------------------------------------------------------------

TEST(KernelEquivalence, FusedDecodeThreadCountInvariant)
{
    ContractPathScope contract;
    Rng rng(31337);
    const int64_t in = 256, out = 301;
    const int bits = 4;
    std::vector<float> lut(16);
    for (float &c : lut) {
        c = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    std::vector<int32_t> assign(static_cast<size_t>(in * out));
    for (int32_t &a : assign) {
        a = static_cast<int32_t>(rng.randint(0, 15));
    }
    PalettizedTensor p = PalettizedTensor::fromAssignments(
        {out, in}, lut, assign, bits);
    PaletteView v = viewOf(p);
    Tensor x = Tensor::fromVector(randomRow(in, 404), {1, in});

    std::vector<float> serial, threaded;
    {
        ThreadCountScope s(1);
        serial = tensorBits(paletteMatmulT(x, v));
    }
    {
        ThreadCountScope s(8);
        threaded = tensorBits(paletteMatmulT(x, v));
    }
    expectBitsEqual(serial, threaded, "1 vs 8 threads, fused decode");
}

// ---------------------------------------------------------------------
// Cross-backend randomized sweep of the other hot kernels (complements
// the static-size loops in test_kernels.cc; table-driven so new
// backends are covered for free).
// ---------------------------------------------------------------------

TEST(KernelEquivalence, RandomizedShapesAcrossBackends)
{
    const kernels::KernelTable &sc =
        kernels::table(kernels::Backend::kScalar);
    Rng shapes(2025);
    for (int round = 0; round < 12; ++round) {
        int64_t n = 1 + static_cast<int64_t>(shapes.randint(0, 299));
        int64_t rows = 1 + static_cast<int64_t>(shapes.randint(0, 16));
        std::vector<float> a = randomRow(rows * n, 900 + round);
        std::vector<float> b = randomRow(n, 1900 + round);
        for (auto be : kernels::availableBackends()) {
            const kernels::KernelTable &kt = kernels::table(be);
            std::string tag = std::string(kernels::backendName(be)) +
                              " n=" + std::to_string(n);

            EXPECT_EQ(sc.dot(a.data(), b.data(), n),
                      kt.dot(a.data(), b.data(), n))
                << "dot " << tag;
            EXPECT_EQ(sc.reduceMax(a.data(), n),
                      kt.reduceMax(a.data(), n))
                << "reduceMax " << tag;

            std::vector<float> y0(static_cast<size_t>(rows));
            std::vector<float> y1(static_cast<size_t>(rows));
            sc.matvec(a.data(), rows, n, b.data(), y0.data());
            kt.matvec(a.data(), rows, n, b.data(), y1.data());
            expectBitsEqual(y0, y1, "matvec " + tag);

            std::vector<float> o0 = b, o1 = b;
            sc.axpy(a.data(), 1.375f, o0.data(), n);
            kt.axpy(a.data(), 1.375f, o1.data(), n);
            expectBitsEqual(o0, o1, "axpy " + tag);
        }
    }
}

// ---------------------------------------------------------------------
// Fast-math stays opt-in.
// ---------------------------------------------------------------------

TEST(KernelEquivalence, FastMathIsOptInAndReversible)
{
    const bool was = kernels::fastMathEnabled();
    kernels::setFastMath(false);

    PackedWeight w = randomPackedWeight(96, 128, 4, 808);
    PalettizedTensor p;
    {
        Rng rng(809);
        std::vector<int32_t> assign(96 * 128);
        for (int32_t &a : assign) {
            a = static_cast<int32_t>(rng.randint(0, 15));
        }
        p = PalettizedTensor::fromAssignments({96, 128}, w.lut, assign,
                                              4);
    }
    PaletteView v = viewOf(p);
    Tensor x = Tensor::fromVector(randomRow(128, 810), {1, 128});

    std::vector<float> contract = tensorBits(paletteMatmulT(x, v));

    if (kernels::fastMathPaletteDot() != nullptr) {
        EXPECT_NE(kernels::fastMathVariantName(), nullptr);
        kernels::setFastMath(true);
        EXPECT_TRUE(kernels::fastMathEnabled());
        std::vector<float> fast = tensorBits(paletteMatmulT(x, v));
        ASSERT_EQ(contract.size(), fast.size());
        // Approximately equal (relaxed accumulation), never asserted
        // bit-equal.
        for (size_t i = 0; i < contract.size(); ++i) {
            EXPECT_NEAR(contract[i], fast[i],
                        1e-3 * (1.0 + std::fabs(contract[i])))
                << "fast-math element " << i;
        }
        kernels::setFastMath(false);
    } else {
        EXPECT_EQ(kernels::fastMathVariantName(), nullptr);
    }

    // After the round trip the default path is bitwise untouched.
    EXPECT_FALSE(kernels::fastMathEnabled());
    std::vector<float> again = tensorBits(paletteMatmulT(x, v));
    expectBitsEqual(contract, again,
                    "contract path after fast-math round trip");

    kernels::setFastMath(was);
}

} // namespace
} // namespace edkm
