/**
 * @file
 * Tensor library tests: storage sharing across views (the PyTorch
 * semantics the paper's Table 1 builds on), layout transforms, dtype
 * conversion, and device transfer accounting.
 */

#include <gtest/gtest.h>

#include "device/device_manager.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

class TensorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }
    Rng rng{42};
};

TEST_F(TensorTest, FactoriesAndShape)
{
    Tensor z = Tensor::zeros({2, 3});
    EXPECT_EQ(z.numel(), 6);
    EXPECT_EQ(z.dim(), 2);
    EXPECT_EQ(z.size(0), 2);
    EXPECT_EQ(z.size(-1), 3);
    EXPECT_EQ(z.flatAt(5), 0.0f);

    Tensor o = Tensor::ones({4});
    EXPECT_EQ(o.flatAt(2), 1.0f);

    Tensor f = Tensor::full({2, 2}, 3.5f);
    EXPECT_EQ(f.at({1, 1}), 3.5f);

    Tensor a = Tensor::arange(2, 6);
    EXPECT_EQ(a.numel(), 4);
    EXPECT_EQ(a.flatAtInt(0), 2);
    EXPECT_EQ(a.flatAtInt(3), 5);
}

TEST_F(TensorTest, ViewSharesStorage)
{
    Tensor x0 = Tensor::rand({1024, 1024}, rng);
    Tensor x1 = x0.view({-1, 1});
    EXPECT_EQ(x1.shape(), (Shape{1024 * 1024, 1}));
    EXPECT_EQ(x0.storageId(), x1.storageId());
    // Writes through one view are visible in the other.
    x1.setFlatAt(0, 77.0f);
    EXPECT_EQ(x0.flatAt(0), 77.0f);
}

TEST_F(TensorTest, Table1Semantics)
{
    // The exact scenario of the paper's Table 1 (f32 1024x1024 = 4 MB).
    DeviceManager &mgr = DeviceManager::instance();
    const int64_t mb4 = 4 * 1024 * 1024;

    // line 0: x0 on "GPU": 4 MB GPU, 0 CPU.
    Tensor x0 = Tensor::rand({1024, 1024}, rng, Device::gpu(0));
    EXPECT_EQ(mgr.stats(Device::gpu(0)).currentBytes, mb4);
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, 0);

    // line 1: view costs no GPU memory.
    Tensor x1 = x0.view({-1, 1});
    EXPECT_EQ(mgr.stats(Device::gpu(0)).currentBytes, mb4);

    // line 2: y0 = x0.to(cpu): 4 MB CPU.
    Tensor y0 = x0.to(Device::cpu());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, mb4);

    // line 3: y1 = x1.to(cpu): CPU doubles to 8 MB -- the redundancy
    // the marshaling layer removes.
    Tensor y1 = x1.to(Device::cpu());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, 2 * mb4);
    EXPECT_NE(y0.storageId(), y1.storageId());

    // Both transfers appear in the ledger.
    EXPECT_EQ(mgr.ledger().d2hTransactions, 2);
    EXPECT_EQ(mgr.ledger().d2hBytes, 2 * mb4);
}

TEST_F(TensorTest, ToSameDeviceIsNoCopy)
{
    Tensor t = Tensor::rand({8, 8}, rng);
    Tensor same = t.to(Device::cpu());
    EXPECT_EQ(t.storageId(), same.storageId());
    EXPECT_EQ(DeviceManager::instance().ledger().totalTransactions(), 0);
}

TEST_F(TensorTest, TransposeStridesAndContiguous)
{
    Tensor t = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    Tensor tt = t.transpose(0, 1);
    EXPECT_EQ(tt.shape(), (Shape{3, 2}));
    EXPECT_EQ(tt.storageId(), t.storageId());
    EXPECT_FALSE(tt.isContiguous());
    EXPECT_EQ(tt.at({0, 1}), 4.0f);
    EXPECT_EQ(tt.at({2, 0}), 3.0f);

    Tensor c = tt.contiguous();
    EXPECT_TRUE(c.isContiguous());
    EXPECT_NE(c.storageId(), t.storageId());
    EXPECT_EQ(c.flatAt(1), 4.0f);
}

TEST_F(TensorTest, SliceSelectShareStorage)
{
    Tensor t = Tensor::fromVector({0, 1, 2, 3, 4, 5, 6, 7}, {4, 2});
    Tensor s = t.slice(0, 1, 3);
    EXPECT_EQ(s.shape(), (Shape{2, 2}));
    EXPECT_EQ(s.storageId(), t.storageId());
    EXPECT_EQ(s.at({0, 0}), 2.0f);

    Tensor sel = t.select(1, 1);
    EXPECT_EQ(sel.shape(), (Shape{4}));
    EXPECT_EQ(sel.flatAt(2), 5.0f);
    EXPECT_EQ(sel.storageId(), t.storageId());
}

TEST_F(TensorTest, PermuteSqueezeUnsqueeze)
{
    Tensor t = Tensor::rand({2, 3, 4}, rng);
    Tensor p = t.permute({2, 0, 1});
    EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
    EXPECT_EQ(p.at({1, 0, 2}), t.at({0, 2, 1}));

    Tensor u = t.unsqueeze(1);
    EXPECT_EQ(u.shape(), (Shape{2, 1, 3, 4}));
    Tensor q = u.squeeze(1);
    EXPECT_EQ(q.shape(), (Shape{2, 3, 4}));
    EXPECT_EQ(q.storageId(), t.storageId());
}

TEST_F(TensorTest, ViewInference)
{
    Tensor t = Tensor::rand({6, 4}, rng);
    Tensor v = t.view({-1, 8});
    EXPECT_EQ(v.shape(), (Shape{3, 8}));
    EXPECT_THROW(t.view({5, -1}), FatalError);
}

TEST_F(TensorTest, CloneIsDeep)
{
    Tensor t = Tensor::rand({3, 3}, rng);
    Tensor c = t.clone();
    EXPECT_NE(c.storageId(), t.storageId());
    c.setFlatAt(0, -1.0f);
    EXPECT_NE(t.flatAt(0), -1.0f);
}

TEST_F(TensorTest, DtypeConversionRoundTrip)
{
    Tensor t = Tensor::fromVector({0.5f, -1.25f, 3.0f}, {3});
    Tensor b = t.to(DType::kBf16);
    EXPECT_EQ(b.dtype(), DType::kBf16);
    // These values are bf16-exact.
    EXPECT_EQ(b.flatAt(0), 0.5f);
    EXPECT_EQ(b.flatAt(1), -1.25f);
    Tensor back = b.to(DType::kF32);
    EXPECT_TRUE(allclose(back, t));
    // bf16 storage is half the size.
    EXPECT_EQ(b.storageBytes(), t.storageBytes() / 2);
}

TEST_F(TensorTest, NonContiguousToDevice)
{
    Tensor t = Tensor::fromVector({1, 2, 3, 4}, {2, 2}, Device::gpu(0));
    Tensor tt = t.transpose(0, 1);
    Tensor cpu = tt.to(Device::cpu());
    EXPECT_TRUE(cpu.isContiguous());
    EXPECT_EQ(cpu.at({0, 1}), 3.0f); // logical content preserved
}

TEST_F(TensorTest, WrapStorageReconstructsViews)
{
    Tensor t = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    Tensor wrapped = Tensor::wrapStorage(t.storagePtr(), {3, 2}, {1, 3},
                                         0, DType::kF32);
    // Same bytes interpreted with transpose strides.
    EXPECT_EQ(wrapped.at({0, 1}), 4.0f);
}

TEST_F(TensorTest, IntTensors)
{
    Tensor idx = Tensor::fromIndices({5, 3, 1}, {3});
    EXPECT_EQ(idx.dtype(), DType::kI64);
    EXPECT_EQ(idx.flatAtInt(1), 3);
    idx.setFlatAtInt(1, 9);
    EXPECT_EQ(idx.flatAtInt(1), 9);
    std::vector<int64_t> v = idx.toIntVector();
    EXPECT_EQ(v, (std::vector<int64_t>{5, 9, 1}));
}

TEST_F(TensorTest, U16Storage)
{
    Tensor u = Tensor::empty({4}, DType::kU16);
    u.setFlatAtInt(0, 65535);
    u.setFlatAtInt(1, 1234);
    EXPECT_EQ(u.flatAtInt(0), 65535);
    EXPECT_EQ(u.flatAtInt(1), 1234);
    EXPECT_EQ(u.storageBytes(), 8);
}

} // namespace
} // namespace edkm
