/**
 * @file
 * eDKM correctness tests: the memory-efficient implementation must
 * compute the same forward result and the same gradients as the dense
 * DKM reference, for every combination of uniquification, sharding, and
 * backward mode — the central exactness claim of the paper (the
 * techniques are lossless re-encodings of what is saved for backward).
 */

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** bf16-bucketed clusterable weights: the LLM fine-tuning setting. */
Tensor
bf16Weights(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    Tensor w = Tensor::empty({n});
    for (int64_t i = 0; i < n; ++i) {
        float center =
            static_cast<float>(rng.randint(0, 7)) * 0.02f - 0.07f;
        w.setFlatAt(i, center + rng.normal(0.0f, 0.002f));
    }
    return w.to(DType::kBf16).to(DType::kF32);
}

DkmConfig
sharedCfg()
{
    DkmConfig cfg;
    cfg.bits = 3;
    cfg.maxIters = 4;
    cfg.convergenceEps = 0.0f; // fixed iterations for exact comparison
    cfg.temperature = 2e-4f;
    cfg.seed = 555;
    return cfg;
}

struct RunResult
{
    Tensor output;
    Tensor grad;
};

/** Forward + backward of sum(upstream * W~) for any layer. */
template <typename Layer>
RunResult
run(Layer &layer, const Tensor &w, const Tensor &upstream)
{
    Variable wv(w.clone(), true);
    Variable out = layer.forward(wv);
    Variable loss = af::sumAll(af::mul(out, af::constant(upstream)));
    backward(loss);
    return {out.data(), wv.grad()};
}

class EdkmEquivalence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
        w = bf16Weights(600, 91);
        Rng r(17);
        upstream = Tensor::randn({600}, r);
    }

    Tensor w, upstream;
};

TEST_F(EdkmEquivalence, DenseFusedMatchesComposedDkm)
{
    DkmLayer dense(sharedCfg());
    RunResult a = run(dense, w, upstream);

    EdkmConfig ecfg;
    ecfg.dkm = sharedCfg();
    ecfg.uniquify = false;
    EdkmLayer fused(ecfg);
    RunResult b = run(fused, w, upstream);

    EXPECT_LT(maxAbsDiff(a.output, b.output), 1e-4f);
    EXPECT_LT(maxAbsDiff(a.grad, b.grad), 2e-3f);
}

TEST_F(EdkmEquivalence, UniquifiedMatchesDense)
{
    EdkmConfig dense_cfg;
    dense_cfg.dkm = sharedCfg();
    dense_cfg.uniquify = false;
    EdkmLayer dense(dense_cfg);
    RunResult a = run(dense, w, upstream);

    EdkmConfig ucfg;
    ucfg.dkm = sharedCfg();
    ucfg.uniquify = true;
    EdkmLayer uniq(ucfg);
    RunResult b = run(uniq, w, upstream);

    // Same math grouped by unique value: equal up to fp association.
    EXPECT_LT(maxAbsDiff(a.output, b.output), 1e-4f);
    EXPECT_LT(maxAbsDiff(a.grad, b.grad), 2e-3f);
    EXPECT_GT(uniq.report().uniqueCount, 0);
    EXPECT_LT(uniq.report().uniqueCount, 600);
}

TEST_F(EdkmEquivalence, FusedBackwardMatchesReconstruct)
{
    EdkmConfig rcfg;
    rcfg.dkm = sharedCfg();
    rcfg.uniquify = true;
    rcfg.backwardMode = EdkmConfig::BackwardMode::kReconstruct;
    EdkmLayer rec(rcfg);
    RunResult a = run(rec, w, upstream);

    EdkmConfig fcfg = rcfg;
    fcfg.backwardMode = EdkmConfig::BackwardMode::kFused;
    EdkmLayer fused(fcfg);
    RunResult b = run(fused, w, upstream);

    EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0f); // same forward
    EXPECT_LT(maxAbsDiff(a.grad, b.grad), 1e-4f);    // same algebra
}

TEST_F(EdkmEquivalence, ShardingPreservesGradients)
{
    auto group = std::make_shared<LearnerGroup>(4);

    EdkmConfig base_cfg;
    base_cfg.dkm = sharedCfg();
    base_cfg.uniquify = true;
    EdkmLayer base(base_cfg);
    RunResult a = run(base, w, upstream);

    EdkmConfig scfg = base_cfg;
    scfg.shard = true;
    EdkmLayer sharded(scfg, group);
    RunResult b = run(sharded, w, upstream);

    EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0f);
    EXPECT_LT(maxAbsDiff(a.grad, b.grad), 1e-4f);
    // The backward must have simulated an all-gather of the index list.
    EXPECT_GE(group->stats().allGathers, 1);
}

TEST_F(EdkmEquivalence, DenseShardingPreservesGradients)
{
    auto group = std::make_shared<LearnerGroup>(4);
    EdkmConfig dense_cfg;
    dense_cfg.dkm = sharedCfg();
    dense_cfg.uniquify = false;
    EdkmLayer dense(dense_cfg);
    RunResult a = run(dense, w, upstream);

    EdkmConfig scfg = dense_cfg;
    scfg.shard = true;
    EdkmLayer sharded(scfg, group);
    RunResult b = run(sharded, w, upstream);

    EXPECT_EQ(maxAbsDiff(a.output, b.output), 0.0f);
    EXPECT_LT(maxAbsDiff(a.grad, b.grad), 1e-4f);
    EXPECT_GE(group->stats().allGathers, 1);
}

TEST_F(EdkmEquivalence, SavedBytesOrdering)
{
    // Table 2's memory ordering at the saved-payload level:
    // dense > uniquified > uniquified+sharded.
    EdkmConfig dense_cfg;
    dense_cfg.dkm = sharedCfg();
    dense_cfg.uniquify = false;
    EdkmLayer dense(dense_cfg);
    run(dense, w, upstream);

    EdkmConfig ucfg = dense_cfg;
    ucfg.uniquify = true;
    EdkmLayer uniq(ucfg);
    run(uniq, w, upstream);

    auto group = std::make_shared<LearnerGroup>(8);
    EdkmConfig uscfg = ucfg;
    uscfg.shard = true;
    EdkmLayer uniq_shard(uscfg, group);
    run(uniq_shard, w, upstream);

    EXPECT_GT(dense.report().savedBytes, uniq.report().savedBytes);
    EXPECT_GT(uniq.report().savedBytes,
              uniq_shard.report().savedBytes);
}

TEST_F(EdkmEquivalence, MarshalOffloadKeepsGradientsIntact)
{
    // Full pipeline: eDKM saves through the marshaling hooks; results
    // must not change.
    EdkmConfig cfg;
    cfg.dkm = sharedCfg();
    cfg.uniquify = true;
    EdkmLayer plain(cfg);
    RunResult a = run(plain, w, upstream);

    Tensor w_gpu = w.to(Device::gpu(0));
    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    EdkmLayer hooked(cfg);
    Variable wv(w_gpu.clone(), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable out = hooked.forward(wv);
        loss = af::sumAll(
            af::mul(out, af::constant(upstream.to(Device::gpu(0)))));
    }
    backward(loss);

    EXPECT_GE(ctx.stats().copies, 1); // payload went to CPU
    EXPECT_LT(maxAbsDiff(a.grad, wv.grad().to(Device::cpu())), 2e-3f);
}

TEST_F(EdkmEquivalence, ReportDiagnostics)
{
    EdkmConfig cfg;
    cfg.dkm = sharedCfg();
    cfg.uniquify = true;
    EdkmLayer layer(cfg);
    run(layer, w, upstream);
    const EdkmReport &r = layer.report();
    EXPECT_EQ(r.iterations, 4);
    EXPECT_GT(r.temperatureUsed, 0.0f);
    EXPECT_GT(r.denseMapBytes, 0);
    EXPECT_GT(r.savedBytes, 0);
    // The whole point: saved bytes far below one dense map per iter.
    EXPECT_LT(r.savedBytes, r.denseMapBytes * r.iterations);
}

TEST_F(EdkmEquivalence, ShardRequiresGroup)
{
    EdkmConfig cfg;
    cfg.dkm = sharedCfg();
    cfg.shard = true;
    EXPECT_THROW(EdkmLayer(cfg, nullptr), FatalError);
}

TEST_F(EdkmEquivalence, PalettizeAfterTraining)
{
    EdkmConfig cfg;
    cfg.dkm = sharedCfg();
    EdkmLayer layer(cfg);
    run(layer, w, upstream);
    PalettizedTensor p = layer.palettize(w);
    EXPECT_EQ(p.bits(), 3);
    // Hard assignment error is bounded on clusterable data.
    EXPECT_LT(maxAbsDiff(p.decompress(), w.view({600})), 0.05f);
}

/** Parameterized sweep: equivalence holds across bit widths. */
class EdkmBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(EdkmBitsSweep, UniquifiedMatchesDenseAtAllBits)
{
    Tensor w = bf16Weights(300, 7u + static_cast<uint64_t>(GetParam()));
    Rng r(3);
    Tensor upstream = Tensor::randn({300}, r);

    DkmConfig dkm;
    dkm.bits = GetParam();
    dkm.maxIters = 3;
    dkm.convergenceEps = 0.0f;
    dkm.temperature = 2e-4f;

    EdkmConfig a_cfg;
    a_cfg.dkm = dkm;
    a_cfg.uniquify = false;
    EdkmLayer a(a_cfg);
    RunResult ra = run(a, w, upstream);

    EdkmConfig b_cfg = a_cfg;
    b_cfg.uniquify = true;
    b_cfg.backwardMode = EdkmConfig::BackwardMode::kFused;
    EdkmLayer b(b_cfg);
    RunResult rb = run(b, w, upstream);

    EXPECT_LT(maxAbsDiff(ra.output, rb.output), 1e-4f);
    EXPECT_LT(maxAbsDiff(ra.grad, rb.grad), 5e-3f);
}

INSTANTIATE_TEST_SUITE_P(Bits, EdkmBitsSweep,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace edkm
