/**
 * @file
 * Concurrent-serving tests: a serve::Server fans requests out to
 * per-thread engines over one shared ArtifactReader, and the outputs
 * must be bit-identical to serial execution — scheduling, interleaving
 * and per-engine cache state may never leak into a response. Also
 * covers the ticket API (submit/wait, per-request stats, error
 * propagation) and per-thread LRU decode-cache isolation under
 * concurrency.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "serve/reader.h"
#include "serve/server.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Compress a tiny model and save its artifact; returns the path. */
std::string
savedArtifact(const std::string &scheme, const std::string &tag)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = 7;
    nn::MiniLlama model(cfg);

    api::CompressionPlan plan;
    plan.scheme = scheme;
    plan.bits = 4;
    plan.groupSize = 16;
    plan.dkmMaxIters = 2;
    api::CalibData calib;
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 16; ++i) {
        toks.push_back(rng.randint(0, 63));
    }
    calib.tokens = Tensor::fromIndices(toks, {2, 16});
    calib.trainConfig.steps = 0;
    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));

    std::string path = "/tmp/edkm_test_server_" + tag + ".edkm";
    res.artifact.save(path);
    return path;
}

/** A deterministic mixed bag of generation requests. */
std::vector<serve::Server::Request>
requestMix(int count, uint64_t seed, int64_t min_new = 0)
{
    std::vector<serve::Server::Request> out;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
        serve::Server::Request r;
        int64_t prompt_len = 1 + rng.randint(0, 5);
        for (int64_t t = 0; t < prompt_len; ++t) {
            r.prompt.push_back(rng.randint(0, 63));
        }
        r.maxNewTokens = min_new + rng.randint(0, 6 - min_new);
        out.push_back(std::move(r));
    }
    return out;
}

TEST(Server, EightThreadsBitIdenticalToSerialUnderInterleaving)
{
    std::string path = savedArtifact("edkm", "determinism");
    auto reader = serve::ArtifactReader::open(path);

    // Serial reference: one engine, requests in order.
    std::vector<serve::Server::Request> requests = requestMix(32, 11);
    serve::InferenceEngine serial(reader);
    std::vector<std::vector<int64_t>> want;
    for (const auto &r : requests) {
        want.push_back(serial.generate(r).tokens);
    }

    // 8 worker threads, all 32 requests in flight at once, twice over
    // (the second pass hits warm per-engine caches and a reused KV
    // cache — still bit-identical).
    serve::ServerConfig cfg;
    cfg.threads = 8;
    serve::Server server(reader, cfg);
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<serve::Server::RequestId> ids =
            server.submit(requests);
        std::vector<serve::Server::Response> got = server.wait(ids);
        ASSERT_EQ(got.size(), requests.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].tokens, want[i])
                << "pass " << pass << " request " << i;
        }
        // Per-request stats are recorded and consistent.
        for (size_t i = 0; i < ids.size(); ++i) {
            serve::Server::RequestStats st = server.requestStats(ids[i]);
            EXPECT_EQ(st.promptTokens,
                      static_cast<int64_t>(requests[i].prompt.size()));
            EXPECT_EQ(st.newTokens, requests[i].maxNewTokens);
            EXPECT_GE(st.engine, 0);
            EXPECT_LT(st.engine, cfg.threads);
        }
        server.release(ids); // long-lived servers drop finished tickets
    }
    EXPECT_EQ(server.completed(), 64);
    std::remove(path.c_str());
}

TEST(Server, PerThreadDecodeCachesStayIsolatedUnderConcurrency)
{
    // fp16 forces lazy dense decodes; a tiny budget forces every
    // engine to run its own LRU eviction while its neighbours do the
    // same — budgets and counters must never bleed across threads.
    std::string path = savedArtifact("fp16", "lru");
    auto reader = serve::ArtifactReader::open(path);

    serve::ServerConfig cfg;
    cfg.threads = 8;
    cfg.engine.decodeCacheBytes = 16 << 10; // far below the working set
    serve::Server server(reader, cfg);

    std::vector<serve::Server::RequestId> ids =
        server.submit(requestMix(32, 23, /*min_new=*/1));
    server.wait(ids);

    std::set<int> used;
    for (serve::Server::RequestId id : ids) {
        used.insert(server.requestStats(id).engine);
    }
    int64_t total_decodes = 0;
    for (int i = 0; i < cfg.threads; ++i) {
        const serve::EngineStats &st = server.engineStats(i);
        // The budget binds per engine, not globally.
        EXPECT_LE(st.cacheBytes, cfg.engine.decodeCacheBytes)
            << "engine " << i;
        if (used.count(i) != 0) {
            // An engine that served anything decoded for itself (its
            // neighbours' caches are invisible to it) and, with the
            // budget this far under the working set, evicted too.
            EXPECT_GT(st.decodes, 0) << "engine " << i;
            EXPECT_GT(st.evictions, 0) << "engine " << i;
        } else {
            EXPECT_EQ(st.decodes, 0) << "engine " << i;
        }
        total_decodes += st.decodes;
    }
    // Isolation means work is repeated per engine, never shared: at
    // least one decode per serving engine.
    EXPECT_GE(total_decodes,
              static_cast<int64_t>(used.size()));
    std::remove(path.c_str());
}

TEST(Server, SubmitWaitTicketsAndErrorPropagation)
{
    std::string path = savedArtifact("rtn", "tickets");
    auto reader = serve::ArtifactReader::open(path);
    serve::ServerConfig cfg;
    cfg.threads = 2;
    serve::Server server(reader, cfg);

    // wait() is callable more than once and in any order.
    serve::Server::RequestId a = server.submit({{1, 2, 3}, 2});
    serve::Server::RequestId b = server.submit({{4, 5}, 3});
    ASSERT_NE(a, b);
    serve::Server::Response rb = server.wait(b);
    serve::Server::Response ra = server.wait(a);
    EXPECT_EQ(ra.tokens.size(), 5u);
    EXPECT_EQ(rb.tokens.size(), 5u);
    EXPECT_EQ(server.wait(a).tokens, ra.tokens);

    // A failing request (empty prompt) surfaces its exception from
    // wait() without poisoning the server or leaking its engine.
    serve::Server::RequestId bad = server.submit({{}, 2});
    EXPECT_THROW(server.wait(bad), FatalError);
    serve::Server::Response ok = server.wait(server.submit({{7}, 2}));
    EXPECT_EQ(ok.tokens.size(), 3u);

    EXPECT_THROW(server.wait(9999), FatalError);

    // release() frees a ticket (even a failed one); the ticket is then
    // unknown and the server keeps serving.
    server.release(std::vector<serve::Server::RequestId>{a, b, bad});
    EXPECT_THROW(server.wait(a), FatalError);
    EXPECT_EQ(server.wait(server.submit({{8, 9}, 1})).tokens.size(),
              3u);
    std::remove(path.c_str());
}

TEST(Server, DestructorDrainsInFlightRequests)
{
    std::string path = savedArtifact("edkm", "drain");
    auto reader = serve::ArtifactReader::open(path);
    std::vector<serve::Server::RequestId> ids;
    {
        serve::ServerConfig cfg;
        cfg.threads = 4;
        serve::Server server(reader, cfg);
        ids = server.submit(requestMix(16, 31));
        // No wait: the destructor must drain the queue without
        // crashing or deadlocking.
    }
    SUCCEED();
    std::remove(path.c_str());
}

TEST(Server, BatchedModeBitIdenticalToSerialWithSharedPrompts)
{
    std::string path = savedArtifact("edkm", "batched");
    auto reader = serve::ArtifactReader::open(path);

    // Mix of independent requests and a shared-prompt-head cluster so
    // the prefix cache engages mid-stream.
    std::vector<serve::Server::Request> requests = requestMix(16, 43);
    for (int i = 0; i < 8; ++i) {
        serve::Server::Request r;
        r.prompt = {9, 9, 9, 9, 9, 9, static_cast<int64_t>(i)};
        r.maxNewTokens = 3;
        requests.push_back(std::move(r));
    }
    serve::InferenceEngine serial(reader);
    std::vector<std::vector<int64_t>> want;
    for (const auto &r : requests) {
        want.push_back(serial.generate(r).tokens);
    }

    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 4;
    cfg.scheduler.prefillChunkTokens = 3;
    cfg.scheduler.prefixCacheBytes = 1 << 20;
    serve::Server server(reader, cfg);
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<serve::Server::RequestId> ids =
            server.submit(requests);
        std::vector<serve::Server::Response> got = server.wait(ids);
        ASSERT_EQ(got.size(), requests.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].tokens, want[i])
                << "pass " << pass << " request " << i;
        }
        for (size_t i = 0; i < ids.size(); ++i) {
            serve::Server::RequestStats st = server.requestStats(ids[i]);
            EXPECT_EQ(st.promptTokens,
                      static_cast<int64_t>(requests[i].prompt.size()));
            EXPECT_EQ(st.newTokens, requests[i].maxNewTokens);
            if (requests[i].maxNewTokens > 1) {
                EXPECT_GT(st.decodeSteps, 0) << "request " << i;
            }
        }
        server.release(ids);
    }
    EXPECT_EQ(server.completed(),
              2 * static_cast<int64_t>(requests.size()));
    // The metrics surface reports the mode, the step histogram and a
    // warm prefix cache.
    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"mode\": \"batched\""), std::string::npos);
    EXPECT_NE(json.find("\"batch_histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_depth\": 0"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Server, BatchedReleaseCancelsQueuedTicketWithoutWedgingTheLoop)
{
    std::string path = savedArtifact("rtn", "cancel");
    auto reader = serve::ArtifactReader::open(path);
    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 1; // everything behind `first` queues
    serve::Server server(reader, cfg);

    // A long-running head keeps the single slot busy while the queued
    // tickets behind it are cancelled / served.
    serve::Server::RequestId first = server.submit({{1, 2, 3}, 400});
    serve::Server::RequestId doomed = server.submit({{4, 5}, 2});
    serve::Server::RequestId kept = server.submit({{6, 7}, 2});
    server.release(doomed); // still queued: cancelled, loop untouched

    EXPECT_THROW(server.wait(doomed), FatalError);
    EXPECT_EQ(server.wait(first).tokens.size(), 403u);
    EXPECT_EQ(server.wait(kept).tokens.size(), 4u);
    EXPECT_EQ(server.cancelled(), 1);
    EXPECT_EQ(server.completed(), 3);
    std::remove(path.c_str());
}

TEST(Server, BatchedDestructorDrainsQueuedAndInFlightTickets)
{
    std::string path = savedArtifact("edkm", "batcheddrain");
    auto reader = serve::ArtifactReader::open(path);
    {
        serve::ServerConfig cfg;
        cfg.batched = true;
        cfg.scheduler.maxBatch = 2; // most of the 16 sit queued
        serve::Server server(reader, cfg);
        std::vector<serve::Server::RequestId> ids =
            server.submit(requestMix(16, 53));
        server.release(ids.back()); // cancel one queued ticket too
        // No wait: the destructor must admit and finish every queued
        // ticket (or honour its cancellation) without deadlocking.
    }
    SUCCEED();
    std::remove(path.c_str());
}

} // namespace
} // namespace edkm
