/**
 * @file
 * Concurrent-serving tests: a serve::Server fans requests out to
 * per-thread engines over one shared ArtifactReader, and the outputs
 * must be bit-identical to serial execution — scheduling, interleaving
 * and per-engine cache state may never leak into a response. Also
 * covers the ticket API (submit/wait, per-request stats, error
 * propagation) and per-thread LRU decode-cache isolation under
 * concurrency.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "serve/reader.h"
#include "serve/server.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Compress a tiny model and save its artifact; returns the path. */
std::string
savedArtifact(const std::string &scheme, const std::string &tag)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = 7;
    nn::MiniLlama model(cfg);

    api::CompressionPlan plan;
    plan.scheme = scheme;
    plan.bits = 4;
    plan.groupSize = 16;
    plan.dkmMaxIters = 2;
    api::CalibData calib;
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 16; ++i) {
        toks.push_back(rng.randint(0, 63));
    }
    calib.tokens = Tensor::fromIndices(toks, {2, 16});
    calib.trainConfig.steps = 0;
    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));

    std::string path = "/tmp/edkm_test_server_" + tag + ".edkm";
    res.artifact.save(path);
    return path;
}

/** A deterministic mixed bag of generation requests. */
std::vector<serve::Server::Request>
requestMix(int count, uint64_t seed, int64_t min_new = 0)
{
    std::vector<serve::Server::Request> out;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
        serve::Server::Request r;
        int64_t prompt_len = 1 + rng.randint(0, 5);
        for (int64_t t = 0; t < prompt_len; ++t) {
            r.prompt.push_back(rng.randint(0, 63));
        }
        r.maxNewTokens = min_new + rng.randint(0, 6 - min_new);
        out.push_back(std::move(r));
    }
    return out;
}

TEST(Server, EightThreadsBitIdenticalToSerialUnderInterleaving)
{
    std::string path = savedArtifact("edkm", "determinism");
    auto reader = serve::ArtifactReader::open(path);

    // Serial reference: one engine, requests in order.
    std::vector<serve::Server::Request> requests = requestMix(32, 11);
    serve::InferenceEngine serial(reader);
    std::vector<std::vector<int64_t>> want;
    for (const auto &r : requests) {
        want.push_back(serial.generate(r).tokens);
    }

    // 8 worker threads, all 32 requests in flight at once, twice over
    // (the second pass hits warm per-engine caches and a reused KV
    // cache — still bit-identical).
    serve::ServerConfig cfg;
    cfg.threads = 8;
    serve::Server server(reader, cfg);
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<serve::Server::RequestId> ids =
            server.submit(requests);
        std::vector<serve::Server::Response> got = server.wait(ids);
        ASSERT_EQ(got.size(), requests.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].tokens, want[i])
                << "pass " << pass << " request " << i;
        }
        // Per-request stats are recorded and consistent.
        for (size_t i = 0; i < ids.size(); ++i) {
            serve::Server::RequestStats st = server.requestStats(ids[i]);
            EXPECT_EQ(st.promptTokens,
                      static_cast<int64_t>(requests[i].prompt.size()));
            EXPECT_EQ(st.newTokens, requests[i].maxNewTokens);
            EXPECT_GE(st.engine, 0);
            EXPECT_LT(st.engine, cfg.threads);
        }
        server.release(ids); // long-lived servers drop finished tickets
    }
    EXPECT_EQ(server.completed(), 64);
    std::remove(path.c_str());
}

TEST(Server, PerThreadDecodeCachesStayIsolatedUnderConcurrency)
{
    // fp16 forces lazy dense decodes; a tiny budget forces every
    // engine to run its own LRU eviction while its neighbours do the
    // same — budgets and counters must never bleed across threads.
    std::string path = savedArtifact("fp16", "lru");
    auto reader = serve::ArtifactReader::open(path);

    serve::ServerConfig cfg;
    cfg.threads = 8;
    cfg.engine.decodeCacheBytes = 16 << 10; // far below the working set
    serve::Server server(reader, cfg);

    std::vector<serve::Server::RequestId> ids =
        server.submit(requestMix(32, 23, /*min_new=*/1));
    server.wait(ids);

    std::set<int> used;
    for (serve::Server::RequestId id : ids) {
        used.insert(server.requestStats(id).engine);
    }
    int64_t total_decodes = 0;
    for (int i = 0; i < cfg.threads; ++i) {
        const serve::EngineStats &st = server.engineStats(i);
        // The budget binds per engine, not globally.
        EXPECT_LE(st.cacheBytes, cfg.engine.decodeCacheBytes)
            << "engine " << i;
        if (used.count(i) != 0) {
            // An engine that served anything decoded for itself (its
            // neighbours' caches are invisible to it) and, with the
            // budget this far under the working set, evicted too.
            EXPECT_GT(st.decodes, 0) << "engine " << i;
            EXPECT_GT(st.evictions, 0) << "engine " << i;
        } else {
            EXPECT_EQ(st.decodes, 0) << "engine " << i;
        }
        total_decodes += st.decodes;
    }
    // Isolation means work is repeated per engine, never shared: at
    // least one decode per serving engine.
    EXPECT_GE(total_decodes,
              static_cast<int64_t>(used.size()));
    std::remove(path.c_str());
}

TEST(Server, SubmitWaitTicketsAndErrorPropagation)
{
    std::string path = savedArtifact("rtn", "tickets");
    auto reader = serve::ArtifactReader::open(path);
    serve::ServerConfig cfg;
    cfg.threads = 2;
    serve::Server server(reader, cfg);

    // wait() is callable more than once and in any order.
    serve::Server::RequestId a = server.submit({{1, 2, 3}, 2});
    serve::Server::RequestId b = server.submit({{4, 5}, 3});
    ASSERT_NE(a, b);
    serve::Server::Response rb = server.wait(b);
    serve::Server::Response ra = server.wait(a);
    EXPECT_EQ(ra.tokens.size(), 5u);
    EXPECT_EQ(rb.tokens.size(), 5u);
    EXPECT_EQ(server.wait(a).tokens, ra.tokens);

    // A failing request (empty prompt) surfaces its exception from
    // wait() without poisoning the server or leaking its engine.
    serve::Server::RequestId bad = server.submit({{}, 2});
    EXPECT_THROW(server.wait(bad), FatalError);
    serve::Server::Response ok = server.wait(server.submit({{7}, 2}));
    EXPECT_EQ(ok.tokens.size(), 3u);

    EXPECT_THROW(server.wait(9999), FatalError);

    // release() frees a ticket (even a failed one); the ticket is then
    // unknown and the server keeps serving.
    server.release(std::vector<serve::Server::RequestId>{a, b, bad});
    EXPECT_THROW(server.wait(a), FatalError);
    EXPECT_EQ(server.wait(server.submit({{8, 9}, 1})).tokens.size(),
              3u);
    std::remove(path.c_str());
}

TEST(Server, DestructorDrainsInFlightRequests)
{
    std::string path = savedArtifact("edkm", "drain");
    auto reader = serve::ArtifactReader::open(path);
    std::vector<serve::Server::RequestId> ids;
    {
        serve::ServerConfig cfg;
        cfg.threads = 4;
        serve::Server server(reader, cfg);
        ids = server.submit(requestMix(16, 31));
        // No wait: the destructor must drain the queue without
        // crashing or deadlocking.
    }
    SUCCEED();
    std::remove(path.c_str());
}

TEST(Server, BatchedModeBitIdenticalToSerialWithSharedPrompts)
{
    std::string path = savedArtifact("edkm", "batched");
    auto reader = serve::ArtifactReader::open(path);

    // Mix of independent requests and a shared-prompt-head cluster so
    // the prefix cache engages mid-stream.
    std::vector<serve::Server::Request> requests = requestMix(16, 43);
    for (int i = 0; i < 8; ++i) {
        serve::Server::Request r;
        r.prompt = {9, 9, 9, 9, 9, 9, static_cast<int64_t>(i)};
        r.maxNewTokens = 3;
        requests.push_back(std::move(r));
    }
    serve::InferenceEngine serial(reader);
    std::vector<std::vector<int64_t>> want;
    for (const auto &r : requests) {
        want.push_back(serial.generate(r).tokens);
    }

    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 4;
    cfg.scheduler.prefillChunkTokens = 3;
    cfg.scheduler.prefixCacheBytes = 1 << 20;
    serve::Server server(reader, cfg);
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<serve::Server::RequestId> ids =
            server.submit(requests);
        std::vector<serve::Server::Response> got = server.wait(ids);
        ASSERT_EQ(got.size(), requests.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].tokens, want[i])
                << "pass " << pass << " request " << i;
        }
        for (size_t i = 0; i < ids.size(); ++i) {
            serve::Server::RequestStats st = server.requestStats(ids[i]);
            EXPECT_EQ(st.promptTokens,
                      static_cast<int64_t>(requests[i].prompt.size()));
            EXPECT_EQ(st.newTokens, requests[i].maxNewTokens);
            if (requests[i].maxNewTokens > 1) {
                EXPECT_GT(st.decodeSteps, 0) << "request " << i;
            }
        }
        server.release(ids);
    }
    EXPECT_EQ(server.completed(),
              2 * static_cast<int64_t>(requests.size()));
    // The metrics surface reports the mode, the step histogram and a
    // warm prefix cache.
    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"mode\": \"batched\""), std::string::npos);
    EXPECT_NE(json.find("\"batch_histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_depth\": 0"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Server, BatchedReleaseCancelsQueuedTicketWithoutWedgingTheLoop)
{
    std::string path = savedArtifact("rtn", "cancel");
    auto reader = serve::ArtifactReader::open(path);
    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 1; // everything behind `first` queues
    serve::Server server(reader, cfg);

    // A long-running head keeps the single slot busy while the queued
    // tickets behind it are cancelled / served.
    serve::Server::RequestId first = server.submit({{1, 2, 3}, 400});
    serve::Server::RequestId doomed = server.submit({{4, 5}, 2});
    serve::Server::RequestId kept = server.submit({{6, 7}, 2});
    server.release(doomed); // still queued: cancelled, loop untouched

    EXPECT_THROW(server.wait(doomed), FatalError);
    EXPECT_EQ(server.wait(first).tokens.size(), 403u);
    EXPECT_EQ(server.wait(kept).tokens.size(), 4u);
    EXPECT_EQ(server.cancelled(), 1);
    EXPECT_EQ(server.completed(), 3);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Hot model swap
// ---------------------------------------------------------------------

/** Serial per-artifact reference outputs for @p requests. */
std::vector<std::vector<int64_t>>
serialWant(std::shared_ptr<const serve::ArtifactReader> reader,
           const std::vector<serve::Server::Request> &requests)
{
    serve::InferenceEngine engine(std::move(reader));
    std::vector<std::vector<int64_t>> out;
    for (const auto &r : requests) {
        out.push_back(engine.generate(r).tokens);
    }
    return out;
}

TEST(Server, ThreadedHotSwapIsPerGenerationBitExactAndReleasesOldMap)
{
    std::string path_a = savedArtifact("edkm", "swap_a");
    std::string path_b = savedArtifact("rtn", "swap_b");
    auto reader_a = serve::ArtifactReader::open(path_a);
    auto reader_b = serve::ArtifactReader::open(path_b);
    std::weak_ptr<const serve::ArtifactReader> old_map = reader_a;

    std::vector<serve::Server::Request> requests = requestMix(12, 61);
    std::vector<std::vector<int64_t>> want_a =
        serialWant(reader_a, requests);
    std::vector<std::vector<int64_t>> want_b =
        serialWant(reader_b, requests);

    serve::ServerConfig cfg;
    cfg.threads = 4;
    serve::Server server(std::move(reader_a), cfg);
    EXPECT_EQ(server.generation(), 0);

    std::vector<serve::Server::RequestId> ids_a =
        server.submit(requests);
    server.swap(reader_b); // drains generation 0 before returning
    EXPECT_EQ(server.generation(), 1);
    std::vector<serve::Server::RequestId> ids_b =
        server.submit(requests);

    // No ticket dropped, every ticket bit-identical to serial serving
    // of the artifact generation it was stamped with.
    std::vector<serve::Server::Response> got_a = server.wait(ids_a);
    std::vector<serve::Server::Response> got_b = server.wait(ids_b);
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(got_a[i].tokens, want_a[i]) << "gen 0 request " << i;
        EXPECT_EQ(got_b[i].tokens, want_b[i]) << "gen 1 request " << i;
        EXPECT_EQ(server.requestStats(ids_a[i]).generation, 0);
        EXPECT_EQ(server.requestStats(ids_b[i]).generation, 1);
    }
    server.release(ids_a);
    server.release(ids_b);

    // With the generation-0 tickets released and every engine rebuilt,
    // nothing pins the old mapping any more.
    EXPECT_TRUE(old_map.expired());
    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"generation\": 1"), std::string::npos);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

// Swap-safety hammer: submissions race hot swaps in both modes; every
// ticket must complete (zero drops) and match the serial reference of
// the generation it reports — never a mix.
TEST(Server, SwapHammerSubmissionsRaceSwapsWithoutDropsOrMixing)
{
    std::string path_a = savedArtifact("edkm", "hammer_a");
    std::string path_b = savedArtifact("rtn", "hammer_b");
    auto reader_a = serve::ArtifactReader::open(path_a);
    auto reader_b = serve::ArtifactReader::open(path_b);

    std::vector<serve::Server::Request> requests = requestMix(8, 67);
    std::vector<std::vector<int64_t>> want[2] = {
        serialWant(reader_a, requests), serialWant(reader_b, requests)};

    serve::ServerConfig threaded;
    threaded.threads = 4;
    serve::ServerConfig batched;
    batched.batched = true;
    batched.scheduler.maxBatch = 3;
    batched.scheduler.prefixCacheBytes = 1 << 20;

    for (const serve::ServerConfig &cfg : {threaded, batched}) {
        serve::Server server(reader_a, cfg);
        std::vector<serve::Server::RequestId> ids;
        std::thread swapper([&] {
            // Generations 1..3 alternate B, A, B while submissions run.
            for (int g = 1; g <= 3; ++g) {
                server.swap(g % 2 == 1 ? reader_b : reader_a);
            }
        });
        for (int pass = 0; pass < 6; ++pass) {
            for (const auto &id : server.submit(requests)) {
                ids.push_back(id);
            }
        }
        swapper.join();
        ASSERT_EQ(server.generation(), 3);

        for (size_t i = 0; i < ids.size(); ++i) {
            serve::Server::Response got = server.wait(ids[i]); // no drop
            serve::Server::RequestStats st =
                server.requestStats(ids[i]);
            ASSERT_GE(st.generation, 0);
            ASSERT_LE(st.generation, 3);
            // Even generation -> artifact A, odd -> artifact B.
            EXPECT_EQ(got.tokens,
                      want[st.generation % 2][i % requests.size()])
                << (cfg.batched ? "batched" : "threaded") << " ticket "
                << i << " generation " << st.generation;
        }
        EXPECT_EQ(server.completed(),
                  static_cast<int64_t>(ids.size()));
    }
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Server, BatchedHotSwapDrainsInFlightAndFlushesThePrefixCache)
{
    std::string path_a = savedArtifact("edkm", "bswap_a");
    std::string path_b = savedArtifact("rtn", "bswap_b");
    auto reader_a = serve::ArtifactReader::open(path_a);
    auto reader_b = serve::ArtifactReader::open(path_b);

    // Shared prompt heads so the prefix cache banks entries that the
    // swap must flush (artifact-A KV rows never seed artifact-B).
    std::vector<serve::Server::Request> requests;
    for (int i = 0; i < 8; ++i) {
        serve::Server::Request r;
        r.prompt = {3, 3, 3, 3, 3, static_cast<int64_t>(i)};
        r.maxNewTokens = 4;
        requests.push_back(std::move(r));
    }
    std::vector<std::vector<int64_t>> want_a =
        serialWant(reader_a, requests);
    std::vector<std::vector<int64_t>> want_b =
        serialWant(reader_b, requests);

    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 4;
    cfg.scheduler.prefixCacheBytes = 1 << 20;
    serve::Server server(reader_a, cfg);

    std::vector<serve::Server::RequestId> ids_a =
        server.submit(requests);
    server.swap(reader_b);
    std::vector<serve::Server::RequestId> ids_b =
        server.submit(requests);

    std::vector<serve::Server::Response> got_a = server.wait(ids_a);
    std::vector<serve::Server::Response> got_b = server.wait(ids_b);
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(got_a[i].tokens, want_a[i]) << "gen 0 request " << i;
        EXPECT_EQ(got_b[i].tokens, want_b[i]) << "gen 1 request " << i;
    }
    // The scheduler snapshot records the generation flush.
    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"generation\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"generation_flushes\""), std::string::npos);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------
// Deadlines, cancellation, latency metrics
// ---------------------------------------------------------------------

TEST(Server, TypedDeadlineAndCancelErrorsSurfaceFromWait)
{
    std::string path = savedArtifact("rtn", "typed");
    auto reader = serve::ArtifactReader::open(path);

    serve::ServerConfig threaded;
    threaded.threads = 2;
    serve::ServerConfig batched;
    batched.batched = true;
    for (const serve::ServerConfig &cfg : {threaded, batched}) {
        serve::Server server(reader, cfg);

        serve::Server::Request late({1, 2, 3}, 5);
        late.deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(1);
        EXPECT_THROW(server.wait(server.submit(std::move(late))),
                     serve::DeadlineExceeded);

        serve::Server::Request dead({4, 5}, 5);
        dead.cancel = std::make_shared<serve::CancelToken>();
        dead.cancel->requestCancel();
        EXPECT_THROW(server.wait(server.submit(std::move(dead))),
                     serve::Cancelled);

        // The server keeps serving afterwards.
        EXPECT_EQ(server.wait(server.submit({{6}, 2})).tokens.size(),
                  3u);
    }
    std::remove(path.c_str());
}

TEST(Server, ReleaseCancelsInFlightTicketsAndFreesTheirSlots)
{
    std::string path = savedArtifact("rtn", "inflight");
    auto reader = serve::ArtifactReader::open(path);

    // Batched, maxBatch 2: FIFO admission means `longrun` is in a slot
    // once `quick` has completed. release() of the in-flight ticket
    // must evict it between steps and hand its slot to `next`.
    serve::ServerConfig cfg;
    cfg.batched = true;
    cfg.scheduler.maxBatch = 2;
    serve::Server server(reader, cfg);
    serve::Server::Request want_next({11, 12}, 3);

    serve::Server::RequestId longrun =
        server.submit({{1, 2, 3}, 2000});
    serve::Server::RequestId quick = server.submit({{4, 5}, 2});
    EXPECT_EQ(server.wait(quick).tokens.size(), 4u);

    server.release(longrun); // in flight: cancelled, slot freed
    EXPECT_THROW(server.wait(longrun), FatalError); // record gone

    serve::Server::RequestId next = server.submit(want_next);
    EXPECT_EQ(server.wait(next).tokens.size(), 5u);
    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"released\": 1"), std::string::npos);

    // Threaded: an in-flight release interrupts the engine mid-ticket.
    serve::ServerConfig tcfg;
    tcfg.threads = 1;
    serve::Server tserver(reader, tcfg);
    serve::Server::RequestId busy = tserver.submit({{1}, 2000});
    tserver.release(busy);
    EXPECT_THROW(tserver.wait(busy), FatalError);
    EXPECT_EQ(tserver.wait(tserver.submit({{2, 3}, 1})).tokens.size(),
              3u);
    std::remove(path.c_str());
}

TEST(Server, MetricsJsonCarriesLatencyHistogramsAndQueueWaitStats)
{
    std::string path = savedArtifact("fp16", "latency");
    auto reader = serve::ArtifactReader::open(path);

    serve::ServerConfig threaded;
    threaded.threads = 2;
    serve::ServerConfig batched;
    batched.batched = true;
    batched.scheduler.maxBatch = 2;
    for (const serve::ServerConfig &cfg : {threaded, batched}) {
        serve::Server server(reader, cfg);
        std::vector<serve::Server::RequestId> ids =
            server.submit(requestMix(8, 71, /*min_new=*/1));
        server.wait(ids);
        for (serve::Server::RequestId id : ids) {
            serve::Server::RequestStats st = server.requestStats(id);
            EXPECT_GE(st.queueMillis, 0.0);
            EXPECT_GE(st.millis, 0.0);
        }
        std::string json = server.metricsJson();
        for (const char *key :
             {"\"latency\"", "\"queue_wait\"", "\"e2e\"", "\"p50_ms\"",
              "\"p95_ms\"", "\"p99_ms\"", "\"count\": 8",
              "\"buckets\""}) {
            EXPECT_NE(json.find(key), std::string::npos)
                << (cfg.batched ? "batched" : "threaded") << " missing "
                << key;
        }
    }
    std::remove(path.c_str());
}

TEST(Server, BatchedDestructorDrainsQueuedAndInFlightTickets)
{
    std::string path = savedArtifact("edkm", "batcheddrain");
    auto reader = serve::ArtifactReader::open(path);
    {
        serve::ServerConfig cfg;
        cfg.batched = true;
        cfg.scheduler.maxBatch = 2; // most of the 16 sit queued
        serve::Server server(reader, cfg);
        std::vector<serve::Server::RequestId> ids =
            server.submit(requestMix(16, 53));
        server.release(ids.back()); // cancel one queued ticket too
        // No wait: the destructor must admit and finish every queued
        // ticket (or honour its cancellation) without deadlocking.
    }
    SUCCEED();
    std::remove(path.c_str());
}

} // namespace
} // namespace edkm
