// Control fixture for guarded_by_violation.cc: the same class with the
// read correctly under the lock. Must compile everywhere, including
// under clang with -Werror=thread-safety — proving the negative test
// fails because of the violation, not because the fixture's includes or
// flags are broken.
#include "util/thread_annotations.h"

class Counter
{
  public:
    void
    bump()
    {
        edkm::util::MutexLock lock(mu_);
        ++value_;
    }

    long
    readLocked() const
    {
        edkm::util::MutexLock lock(mu_);
        return value_;
    }

  private:
    mutable edkm::util::Mutex mu_;
    long value_ EDKM_GUARDED_BY(mu_) = 0;
};

int
main()
{
    Counter c;
    c.bump();
    return static_cast<int>(c.readLocked());
}
