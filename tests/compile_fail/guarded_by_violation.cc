// Negative-compile fixture: reading a GUARDED_BY field without holding
// its mutex MUST fail under clang with -Werror=thread-safety. CMake
// proves this at configure time (the armed analysis rejects it) and a
// WILL_FAIL ctest entry re-proves it on every test run. If this file
// ever compiles with the analysis armed, the annotations have gone
// inert — that is the failure the fixture exists to catch.
//
// Under GCC (annotations expand to nothing) it compiles fine, which is
// why the checks are clang-gated.
#include "util/thread_annotations.h"

class Counter
{
  public:
    void
    bump()
    {
        edkm::util::MutexLock lock(mu_);
        ++value_;
    }

    long
    readUnlocked() const
    {
        return value_; // BAD: no lock held — TSA must reject this read
    }

  private:
    mutable edkm::util::Mutex mu_;
    long value_ EDKM_GUARDED_BY(mu_) = 0;
};

int
main()
{
    Counter c;
    c.bump();
    return static_cast<int>(c.readUnlocked());
}
