/**
 * @file
 * Tests for the serving surface: borrowed-mode Storage lifetime and
 * accounting, the streamed matmul's bit-identity with the dense kernel,
 * palette views, the v2 artifact container (round trip, alignment, v1
 * compatibility gate, fuzz-ish corruption rejection), ArtifactReader
 * zero-copy views, and InferenceEngine bit-exactness against the
 * eagerly reconstructed model for every codec.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <gtest/gtest.h>

#include "api/plan.h"
#include "api/session.h"
#include "core/palettize.h"
#include "device/device_manager.h"
#include "nn/clustered_linear.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "tensor/ops.h"
#include "util/checksum.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

nn::MiniLlama
tinyModel(uint64_t seed = 7)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = seed;
    return nn::MiniLlama(cfg);
}

/** Compress a tiny model with @p scheme (freeze-only) and return the
 *  artifact plus the in-memory model it matches. */
api::SessionResult
compressTiny(nn::MiniLlama &model, const std::string &scheme)
{
    api::CompressionPlan plan;
    plan.scheme = scheme;
    plan.bits = 4;
    plan.groupSize = 16;
    plan.dkmMaxIters = 2;
    api::CalibData calib;
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 16; ++i) {
        toks.push_back(rng.randint(0, 63));
    }
    calib.tokens = Tensor::fromIndices(toks, {2, 16});
    calib.trainConfig.steps = 0;
    api::Session session;
    return session.run(model, plan, std::move(calib));
}

std::string
writeTemp(const std::vector<uint8_t> &bytes, const std::string &name)
{
    std::string path = "/tmp/" + name;
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return path;
}

Tensor
tokenBatch(int64_t b, int64_t s, int64_t vocab, uint64_t seed)
{
    std::vector<int64_t> toks;
    Rng rng(seed);
    for (int64_t i = 0; i < b * s; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {b, s});
}

// ---------------------------------------------------------------------
// Borrowed-mode storage
// ---------------------------------------------------------------------

TEST(BorrowedStorage, RecordsNoAllocationAndFlagsItself)
{
    DeviceManager &mgr = DeviceManager::instance();
    int64_t before = mgr.stats(Device::cpu()).currentBytes;
    auto bytes = std::make_shared<std::vector<float>>(16, 1.5f);
    auto st = Storage::borrow(
        reinterpret_cast<const std::byte *>(bytes->data()),
        static_cast<int64_t>(bytes->size() * 4), Device::cpu(), bytes);
    EXPECT_TRUE(st->borrowed());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, before);

    auto owned = Storage::allocate(64, Device::cpu());
    EXPECT_FALSE(owned->borrowed());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, before + 64);
}

TEST(BorrowedStorage, OwnerOutlivesEveryView)
{
    auto bytes = std::make_shared<std::vector<float>>(8);
    for (size_t i = 0; i < bytes->size(); ++i) {
        (*bytes)[i] = static_cast<float>(i) * 0.5f;
    }
    std::weak_ptr<std::vector<float>> watch = bytes;

    Tensor view;
    {
        auto st = Storage::borrow(
            reinterpret_cast<const std::byte *>(bytes->data()),
            static_cast<int64_t>(bytes->size() * 4), Device::cpu(),
            bytes);
        view = Tensor::wrapStorage(st, {2, 4}, {4, 1}, 0, DType::kF32);
        bytes.reset(); // the view must keep the buffer alive
    }
    ASSERT_FALSE(watch.expired());
    EXPECT_FLOAT_EQ(view.at({1, 3}), 3.5f);

    view = Tensor(); // last reference gone -> buffer released
    EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------
// Streamed matmul bit-identity
// ---------------------------------------------------------------------

/** fill that serves rows of a dense B, for equivalence testing. */
MatmulRowFill
denseFill(const Tensor &bT)
{
    const float *p = bT.rawData<float>();
    int64_t n = bT.size(1);
    return [p, n](int64_t p0, int64_t p1, float *dst) {
        std::memcpy(dst, p + p0 * n,
                    static_cast<size_t>((p1 - p0) * n) * 4);
    };
}

TEST(MatmulStreamed, BitIdenticalToDenseMatmul)
{
    Rng rng(11);
    // (m, k, n) covering the general, m==1 (single-row) and n==1 (matvec)
    // kernel paths, plus a k large enough to span several tiles.
    for (auto [m, k, n] : std::vector<std::array<int64_t, 3>>{
             {5, 33, 17}, {1, 64, 48}, {7, 40, 1}, {3, 500, 300}}) {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({k, n}, rng);
        Tensor want = matmul(a, b);
        Tensor got = matmulStreamed(a, k, n, denseFill(b));
        EXPECT_EQ(want.toVector(), got.toVector())
            << "m=" << m << " k=" << k << " n=" << n;
    }
}

// ---------------------------------------------------------------------
// Palette views
// ---------------------------------------------------------------------

TEST(PaletteView, RandomAccessUnpackMatchesSequential)
{
    Rng rng(5);
    for (int bits : {1, 2, 3, 4, 5, 7, 8, 11, 16}) {
        std::vector<int32_t> values;
        for (int i = 0; i < 61; ++i) {
            values.push_back(static_cast<int32_t>(
                rng.randint(0, (1 << bits) - 1)));
        }
        std::vector<uint8_t> packed = packBits(values, bits);
        std::vector<int32_t> seq =
            unpackBits(packed, bits, static_cast<int64_t>(values.size()));
        for (size_t i = 0; i < values.size(); ++i) {
            EXPECT_EQ(unpackBitsAt(packed.data(), bits,
                                   static_cast<int64_t>(i)),
                      seq[i])
                << "bits=" << bits << " i=" << i;
        }
    }
}

TEST(PaletteView, StreamedMatmulMatchesDecompressedDense)
{
    Rng rng(17);
    Tensor w = Tensor::randn({24, 40}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    Tensor dense = p.decompress();

    Tensor x = Tensor::randn({6, 40}, rng);
    Tensor want = matmul(x, dense.transpose(0, 1));
    Tensor got = paletteMatmulT(x, viewOf(p));
    EXPECT_EQ(want.toVector(), got.toVector());

    // Single-row input exercises the m==1 column-loop path.
    Tensor x1 = Tensor::randn({1, 40}, rng);
    EXPECT_EQ(matmul(x1, dense.transpose(0, 1)).toVector(),
              paletteMatmulT(x1, viewOf(p)).toVector());
}

TEST(PaletteView, ParseFromPayloadAndGatherRows)
{
    Rng rng(23);
    Tensor table = Tensor::randn({32, 12}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(table, 4, rng);
    std::vector<uint8_t> payload = p.serialize();

    auto owner = std::make_shared<std::vector<uint8_t>>(payload);
    PaletteView v =
        parsePaletteView(owner->data(), owner->size(), owner);
    EXPECT_EQ(v.bits, 4);
    EXPECT_EQ(v.shape, (Shape{32, 12}));
    EXPECT_EQ(v.lut, p.lut());

    Tensor toks = Tensor::fromIndices({0, 31, 7, 7, 16}, {5});
    Tensor want = gatherRows(p.decompress(), toks);
    Tensor got = paletteGatherRows(v, toks);
    EXPECT_EQ(want.toVector(), got.toVector());

    // Corrupt payloads are rejected, not mis-read.
    std::vector<uint8_t> bad = payload;
    bad[0] ^= 0xff; // magic
    EXPECT_THROW(parsePaletteView(bad.data(), bad.size(), nullptr),
                 FatalError);
    EXPECT_THROW(
        parsePaletteView(payload.data(), payload.size() - 3, nullptr),
        FatalError);
}

// ---------------------------------------------------------------------
// Artifact v2 container
// ---------------------------------------------------------------------

TEST(ArtifactV2, EmitsAlignedSectionsAndRoundTripsBitExact)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();

    ASSERT_TRUE(api::isArtifactV2(bytes.data(), bytes.size()));
    api::ArtifactLayout layout =
        api::parseArtifactLayout(bytes.data(), bytes.size());
    EXPECT_EQ(layout.scheme, "rtn");
    ASSERT_EQ(layout.sections.size(), res.artifact.entries.size());
    for (size_t i = 0; i < layout.sections.size(); ++i) {
        const api::TensorSection &s = layout.sections[i];
        EXPECT_EQ(s.offset % api::kArtifactAlign, 0) << s.name;
        EXPECT_EQ(s.name, res.artifact.entries[i].name);
        EXPECT_EQ(s.bytes, res.artifact.entries[i].payloadBytes());
    }

    api::ModelArtifact back = api::ModelArtifact::deserialize(bytes);
    ASSERT_EQ(back.entries.size(), res.artifact.entries.size());
    for (size_t i = 0; i < back.entries.size(); ++i) {
        EXPECT_EQ(back.entries[i].payload,
                  res.artifact.entries[i].payload)
            << back.entries[i].name;
    }
    // Serialisation is deterministic: same artifact, same bytes.
    EXPECT_EQ(bytes, back.serialize());
}

TEST(ArtifactV2, V1FilesStillLoadThroughTheVersionGate)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");

    std::vector<uint8_t> v1 = res.artifact.serializeV1();
    ASSERT_TRUE(api::isArtifactV1(v1.data(), v1.size()));
    std::string path = writeTemp(v1, "edkm_test_v1_artifact.edkm");

    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    nn::MiniLlama eager = res.artifact.reconstruct();
    nn::MiniLlama fromV1 = loaded.reconstruct();
    auto a = eager.namedParameters();
    auto b = fromV1.namedParameters();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].second.data().toVector(),
                  b[i].second.data().toVector())
            << a[i].first;
    }

    // The serving reader consumes v1 through its compat path too.
    auto reader = serve::ArtifactReader::open(path);
    EXPECT_EQ(reader->version(), api::kArtifactVersionV1);
    EXPECT_EQ(reader->scheme(), res.artifact.scheme);
    EXPECT_EQ(reader->fileBytes(), static_cast<int64_t>(v1.size()));
    serve::InferenceEngine engine(reader);
    Tensor toks = tokenBatch(1, 6, 64, 31);
    NoGradGuard ng;
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    std::remove(path.c_str());
}

TEST(ArtifactV2, CorruptionIsRejectedWithTheSectionNamed)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();

    // Version bump -> actionable error.
    {
        std::vector<uint8_t> bad = bytes;
        uint32_t v = 9;
        std::memcpy(bad.data() + 8, &v, 4);
        try {
            api::parseArtifactLayout(bad.data(), bad.size());
            FAIL() << "version 9 accepted";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos);
        }
    }
    // Misaligned first section -> error names it.
    {
        std::vector<uint8_t> bad = bytes;
        uint64_t table_off;
        std::memcpy(&table_off, bad.data() + 32, 8);
        uint64_t off;
        std::memcpy(&off, bad.data() + table_off, 8);
        off += 4;
        std::memcpy(bad.data() + table_off, &off, 8);
        try {
            api::parseArtifactLayout(bad.data(), bad.size());
            FAIL() << "misaligned section accepted";
        } catch (const FatalError &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("aligned"), std::string::npos) << msg;
            EXPECT_NE(msg.find(res.artifact.entries[0].name),
                      std::string::npos)
                << msg;
        }
    }
    // Section running past the file end.
    {
        std::vector<uint8_t> bad = bytes;
        uint64_t table_off;
        std::memcpy(&table_off, bad.data() + 32, 8);
        uint64_t huge = bad.size();
        std::memcpy(bad.data() + table_off + 8, &huge, 8);
        EXPECT_THROW(api::parseArtifactLayout(bad.data(), bad.size()),
                     FatalError);
    }
    // Appended garbage is caught by the declared file size.
    std::vector<uint8_t> padded = bytes;
    padded.resize(padded.size() + 13, 0xcd);
    EXPECT_THROW(api::ModelArtifact::deserialize(padded), FatalError);
}

// Structured fuzz sweep over the v2 section table: every section's
// offset/size field is mutated in each way the layout contract can be
// violated (alignment, overlap, bounds, fixed-stride size), and the
// parser must reject the file with an error naming the section where
// the inconsistency is detected — before any payload is touched. The
// truncation sweep rides along as one more mutation family.
TEST(ArtifactV2, SectionTableFuzzSweepNamesTheBadSection)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();
    api::ArtifactLayout good =
        api::parseArtifactLayout(bytes.data(), bytes.size());
    uint64_t table_off;
    std::memcpy(&table_off, bytes.data() + 32, 8);
    size_t n = good.sections.size();
    ASSERT_GE(n, 2u);

    struct Mutation
    {
        std::string label;
        std::function<void(std::vector<uint8_t> &)> apply;
        std::string expect_substr; ///< must appear in the error
        std::string expect_name;   ///< section named (empty = any)
    };
    auto poke = [table_off](size_t section, size_t field,
                            uint64_t value) {
        return [table_off, section, field,
                value](std::vector<uint8_t> &b) {
            std::memcpy(b.data() + table_off + 16 * section + field * 8,
                        &value, 8);
        };
    };

    std::vector<Mutation> table;
    for (size_t i = 0; i < n; ++i) {
        const api::TensorSection &s = good.sections[i];
        uint64_t off = static_cast<uint64_t>(s.offset);
        uint64_t sz = static_cast<uint64_t>(s.bytes);
        std::string at = " (section " + std::to_string(i) + ")";
        table.push_back({"misaligned offset" + at, poke(i, 0, off + 4),
                         "aligned", s.name});
        table.push_back({"offset into the table" + at, poke(i, 0, 0),
                         "overlaps", s.name});
        if (i > 0) {
            uint64_t prev =
                static_cast<uint64_t>(good.sections[i - 1].offset);
            table.push_back({"offset onto the previous section" + at,
                             poke(i, 0, prev), "overlaps", s.name});
        }
        table.push_back({"size past the file end" + at,
                         poke(i, 1, bytes.size() + 1), "past the end",
                         s.name});
        bool fixed_stride = s.codec == api::Codec::kRawF32 ||
                            s.codec == api::Codec::kDenseF16;
        if (fixed_stride) {
            table.push_back({"fixed-stride size mismatch" + at,
                             poke(i, 1, sz - 4), "for its shape needs",
                             s.name});
        }
        // Growing a section: the bounds check fires when the grown
        // section no longer fits the file; otherwise fixed-stride
        // codecs fail their exact-size check right at the section and
        // variable-size codecs collide with the neighbour — always
        // caught, always named.
        bool over_end = off + sz + 64 > bytes.size();
        table.push_back(
            {"grown size" + at, poke(i, 1, sz + 64),
             over_end ? "past the end"
                      : (fixed_stride ? "for its shape needs"
                                      : "overlaps"),
             over_end || fixed_stride ? s.name
                                      : good.sections[i + 1].name});
    }
    for (size_t cut = 0; cut < bytes.size(); cut += 97) {
        table.push_back(
            {"truncated to " + std::to_string(cut) + " bytes",
             [cut](std::vector<uint8_t> &b) {
                 b.resize(cut);
             },
             cut < 64 ? "header" : "truncated", ""});
    }

    for (const Mutation &m : table) {
        std::vector<uint8_t> bad = bytes;
        m.apply(bad);
        try {
            api::parseArtifactLayout(bad.data(), bad.size());
            FAIL() << m.label << " accepted";
        } catch (const FatalError &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find(m.expect_substr), std::string::npos)
                << m.label << ": " << msg;
            if (!m.expect_name.empty()) {
                EXPECT_NE(msg.find("'" + m.expect_name + "'"),
                          std::string::npos)
                    << m.label << ": " << msg;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Artifact v2.1 payload checksums
// ---------------------------------------------------------------------

TEST(Checksum64, DeterministicLengthSeedAndBitFlipSensitive)
{
    // Cover every finalisation path: empty, byte tail, 4-byte lane,
    // 8-byte lane, exactly one stripe, stripes plus tail.
    std::vector<size_t> lens = {0, 1, 3, 4, 7, 8, 15, 31, 32, 33, 100};
    std::vector<uint8_t> buf(100);
    for (size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<uint8_t>(i * 37 + 11);
    }
    std::vector<uint64_t> seen;
    for (size_t len : lens) {
        uint64_t h = checksum64(buf.data(), len);
        EXPECT_EQ(h, checksum64(buf.data(), len)) << len;
        EXPECT_NE(h, checksum64(buf.data(), len, /*seed=*/1)) << len;
        for (uint64_t prev : seen) {
            EXPECT_NE(h, prev) << len;
        }
        seen.push_back(h);
    }
    // Any single-bit flip anywhere in the message changes the digest.
    std::vector<uint8_t> msg(64);
    for (size_t i = 0; i < msg.size(); ++i) {
        msg[i] = static_cast<uint8_t>(i);
    }
    uint64_t base = checksum64(msg.data(), msg.size());
    for (size_t byte = 0; byte < msg.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            msg[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_NE(checksum64(msg.data(), msg.size()), base)
                << "byte " << byte << " bit " << bit;
            msg[byte] ^= static_cast<uint8_t>(1u << bit);
        }
    }
}

TEST(ArtifactV21, WriterStampsChecksumsThatMatchThePayloads)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();
    api::ArtifactLayout layout =
        api::parseArtifactLayout(bytes.data(), bytes.size());
    ASSERT_TRUE(layout.hasChecksums);
    for (const api::TensorSection &s : layout.sections) {
        EXPECT_EQ(s.checksum,
                  checksum64(bytes.data() + s.offset,
                             static_cast<size_t>(s.bytes)))
            << s.name;
    }

    // A clean checksummed file passes eager verification at open, and
    // the lazy default verifies each section on its first view.
    std::string path = writeTemp(bytes, "edkm_test_v21_clean.edkm");
    auto eager =
        serve::ArtifactReader::open(path, serve::VerifyMode::kEager);
    EXPECT_TRUE(eager->hasChecksums());
    EXPECT_EQ(eager->sectionsVerified(),
              static_cast<int64_t>(layout.sections.size()));

    auto lazy =
        serve::ArtifactReader::open(path, serve::VerifyMode::kLazy);
    EXPECT_EQ(lazy->sectionsVerified(), 0);
    lazy->decode(layout.sections.front().name);
    EXPECT_GE(lazy->sectionsVerified(), 1);
    lazy->decode(layout.sections.front().name); // sticky: verified once
    lazy->verifyAll();
    EXPECT_EQ(lazy->sectionsVerified(),
              static_cast<int64_t>(layout.sections.size()));

    auto off =
        serve::ArtifactReader::open(path, serve::VerifyMode::kOff);
    off->decode(layout.sections.front().name);
    EXPECT_EQ(off->sectionsVerified(), 0);
    std::remove(path.c_str());
}

// The payload counterpart of the section-table sweep: flip one byte at
// the first / middle / last position of EVERY section's payload, and
// the reader must reject the section with its name in the error —
// eagerly at open, or lazily at the first view of that section while
// the rest of the artifact stays fully servable.
TEST(ArtifactV21, PayloadBitFlipFuzzNamesTheCorruptSection)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();
    api::ArtifactLayout good =
        api::parseArtifactLayout(bytes.data(), bytes.size());
    ASSERT_TRUE(good.hasChecksums);

    int case_id = 0;
    for (size_t i = 0; i < good.sections.size(); ++i) {
        const api::TensorSection &s = good.sections[i];
        std::vector<int64_t> positions = {0, s.bytes / 2, s.bytes - 1};
        for (int64_t pos : positions) {
            std::vector<uint8_t> bad = bytes;
            bad[static_cast<size_t>(s.offset + pos)] ^= 0x10;
            std::string path = writeTemp(
                bad, "edkm_test_v21_flip_" + std::to_string(case_id++) +
                         ".edkm");

            // Eager: rejected at open, section named.
            try {
                serve::ArtifactReader::open(path,
                                            serve::VerifyMode::kEager);
                FAIL() << s.name << " byte " << pos << " accepted";
            } catch (const FatalError &e) {
                std::string msg = e.what();
                EXPECT_NE(msg.find("checksum mismatch"),
                          std::string::npos)
                    << msg;
                EXPECT_NE(msg.find("'" + s.name + "'"),
                          std::string::npos)
                    << msg;
            }

            // Lazy: open succeeds (header / manifest / table are
            // intact), the first view of the bad section throws with
            // its name, and every other section still serves.
            auto lazy = serve::ArtifactReader::open(
                path, serve::VerifyMode::kLazy);
            try {
                lazy->decode(s.name);
                FAIL() << s.name << " byte " << pos
                       << " served lazily";
            } catch (const FatalError &e) {
                EXPECT_NE(std::string(e.what()).find("'" + s.name + "'"),
                          std::string::npos)
                    << e.what();
            }
            size_t other = (i + 1) % good.sections.size();
            if (other != i) {
                EXPECT_NO_THROW(
                    lazy->decode(good.sections[other].name));
            }

            // Off: trusts payload bytes (structural digest still
            // checked), so the open itself must succeed.
            auto off = serve::ArtifactReader::open(
                path, serve::VerifyMode::kOff);
            EXPECT_EQ(off->sectionsVerified(), 0);
            std::remove(path.c_str());
        }
    }

    // Flipping a byte of the checksum TABLE itself corrupts the
    // container metadata: the always-on header digest rejects it in
    // every mode.
    {
        std::vector<uint8_t> bad = bytes;
        EDKM_CHECK(good.checksumTableOffset > 0, "missing table");
        bad[static_cast<size_t>(good.checksumTableOffset) + 3] ^= 0x01;
        std::string path =
            writeTemp(bad, "edkm_test_v21_table_flip.edkm");
        EXPECT_THROW(serve::ArtifactReader::open(
                         path, serve::VerifyMode::kOff),
                     FatalError);
        std::remove(path.c_str());
    }
}

TEST(ArtifactV21, UnchecksummedV2StaysReadableEverywhere)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::vector<uint8_t> with = res.artifact.serialize();
    std::vector<uint8_t> without =
        res.artifact.serialize(/*with_checksums=*/false);
    EXPECT_LT(without.size(), with.size());

    api::ArtifactLayout layout =
        api::parseArtifactLayout(without.data(), without.size());
    EXPECT_FALSE(layout.hasChecksums);

    // Whole-artifact round trip is still bit-exact.
    api::ModelArtifact back = api::ModelArtifact::deserialize(without);
    ASSERT_EQ(back.entries.size(), res.artifact.entries.size());
    for (size_t i = 0; i < back.entries.size(); ++i) {
        EXPECT_EQ(back.entries[i].payload,
                  res.artifact.entries[i].payload)
            << back.entries[i].name;
    }

    // The reader serves it under every verify mode (there is nothing
    // to verify), bit-identical to the checksummed container.
    std::string p0 = writeTemp(without, "edkm_test_v21_none.edkm");
    std::string p1 = writeTemp(with, "edkm_test_v21_with.edkm");
    auto r0 = serve::ArtifactReader::open(p0, serve::VerifyMode::kEager);
    auto r1 = serve::ArtifactReader::open(p1, serve::VerifyMode::kEager);
    EXPECT_FALSE(r0->hasChecksums());
    EXPECT_EQ(r0->sectionsVerified(), 0);
    serve::InferenceEngine e0(r0), e1(r1);
    Tensor toks = tokenBatch(1, 5, 64, 77);
    NoGradGuard ng;
    EXPECT_EQ(e0.forward(toks).toVector(), e1.forward(toks).toVector());
    std::remove(p0.c_str());
    std::remove(p1.c_str());
}

TEST(ArtifactV21, VerifyModeEnvKnobSelectsAndRejects)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_v21_env.edkm");
    int64_t n =
        static_cast<int64_t>(res.artifact.entries.size());

    setenv("EDKM_VERIFY", "eager", 1);
    auto r = serve::ArtifactReader::open(path);
    EXPECT_EQ(r->verifyMode(), serve::VerifyMode::kEager);
    EXPECT_EQ(r->sectionsVerified(), n);

    setenv("EDKM_VERIFY", "off", 1);
    EXPECT_EQ(serve::ArtifactReader::open(path)->verifyMode(),
              serve::VerifyMode::kOff);

    setenv("EDKM_VERIFY", "lazy", 1);
    EXPECT_EQ(serve::ArtifactReader::open(path)->verifyMode(),
              serve::VerifyMode::kLazy);

    unsetenv("EDKM_VERIFY");
    EXPECT_EQ(serve::ArtifactReader::open(path)->verifyMode(),
              serve::VerifyMode::kLazy);

    setenv("EDKM_VERIFY", "paranoid", 1);
    EXPECT_THROW(serve::ArtifactReader::open(path), FatalError);
    unsetenv("EDKM_VERIFY");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ArtifactReader
// ---------------------------------------------------------------------

TEST(Reader, ZeroCopyViewsMatchEagerDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_reader.edkm");

    auto reader = serve::ArtifactReader::open(path);
    EXPECT_EQ(reader->version(), api::kArtifactVersionV2);
    for (const api::TensorSection &s : reader->sections()) {
        Tensor decoded = reader->decode(s.name);
        EXPECT_EQ(decoded.toVector(),
                  res.artifact.entry(s.name).decode().toVector())
            << s.name;
        if (s.codec == api::Codec::kRawF32) {
            Tensor view = reader->denseView(s.name);
            EXPECT_TRUE(view.storagePtr()->borrowed());
            EXPECT_EQ(view.toVector(), decoded.toVector()) << s.name;
        } else if (s.codec == api::Codec::kPalettized) {
            PaletteView v = reader->paletteView(s.name);
            EXPECT_EQ(paletteGatherRows(
                          v, Tensor::arange(0, v.shape[0]))
                          .toVector(),
                      decoded.toVector())
                << s.name;
        }
    }
    std::remove(path.c_str());
}

TEST(Reader, ViewsKeepTheMappingAliveAfterTheReaderDies)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_lifetime.edkm");

    Tensor view;
    std::vector<float> want;
    {
        auto reader = serve::ArtifactReader::open(path);
        view = reader->denseView("final_norm.weight");
        want = reader->decode("final_norm.weight").toVector();
    } // reader gone; the borrowed storage pins the mapping
    EXPECT_EQ(view.toVector(), want);
    std::remove(path.c_str());
}

TEST(Reader, ReadFallbackServesIdenticalBytes)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_fallback.edkm");

    auto mapped = serve::ArtifactReader::open(path);
    ::setenv("EDKM_NO_MMAP", "1", 1);
    auto fallback = serve::ArtifactReader::open(path);
    ::unsetenv("EDKM_NO_MMAP");
    EXPECT_FALSE(fallback->mapped());
    for (const api::TensorSection &s : mapped->sections()) {
        EXPECT_EQ(mapped->decode(s.name).toVector(),
                  fallback->decode(s.name).toVector())
            << s.name;
    }
    std::remove(path.c_str());
}

TEST(Reader, MissingFileAndBadMagicFailActionably)
{
    EXPECT_THROW(
        serve::ArtifactReader::open("/tmp/edkm_no_such_file.edkm"),
        FatalError);
    std::string path = writeTemp(
        std::vector<uint8_t>(128, 0x5a), "edkm_test_badmagic.edkm");
    EXPECT_THROW(serve::ArtifactReader::open(path), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------

/** Engine logits must be bit-identical to the eager model's for every
 *  codec an artifact can carry. */
class EngineBitExact : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineBitExact, ForwardMatchesEagerReconstruct)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, GetParam());
    std::string path = writeTemp(res.artifact.serialize(),
                                 std::string("edkm_test_engine_") +
                                     GetParam() + ".edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);

    NoGradGuard ng;
    for (auto [b, s] : std::vector<std::pair<int64_t, int64_t>>{
             {2, 8}, {1, 1}}) {
        Tensor toks = tokenBatch(b, s, 64, 7 + static_cast<uint64_t>(s));
        EXPECT_EQ(engine.forward(toks).toVector(),
                  eager.forward(toks).data().toVector())
            << GetParam() << " b=" << b << " s=" << s;
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, EngineBitExact,
                         ::testing::Values("fp16", "rtn", "edkm"));

TEST(Engine, TinyCacheBudgetEvictsButStaysExact)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "fp16"); // all f16
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_lru.edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::EngineConfig cfg;
    cfg.decodeCacheBytes = 16 << 10; // far below the working set
    serve::InferenceEngine engine(reader, cfg);

    NoGradGuard ng;
    Tensor toks = tokenBatch(2, 6, 64, 13);
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    EXPECT_GT(engine.stats().evictions, 0);
    EXPECT_LE(engine.residentWeightBytes(), 16 << 10);

    // A second forward still answers exactly after evictions.
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    std::remove(path.c_str());
}

TEST(Engine, PalettizedLayersStreamWithoutDenseDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_stream.edkm");

    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    NoGradGuard ng;
    engine.forward(tokenBatch(1, 4, 64, 3));
    // eDKM palettizes every Linear and the embedding: no dense decode
    // happens at all, every matmul streams LUT+index tiles.
    EXPECT_EQ(engine.stats().decodes, 0);
    EXPECT_EQ(engine.residentWeightBytes(), 0);
    EXPECT_GT(engine.stats().streamedMatmuls, 0);
    EXPECT_GT(engine.stats().borrowedViews, 0);
    std::remove(path.c_str());
}

TEST(Engine, BatchedGenerateMatchesEagerGreedyDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_gen.edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);

    std::vector<serve::InferenceEngine::Request> batch = {
        {{1, 2, 3}, 4}, {{60, 5}, 3}};
    auto responses = engine.generate(batch);
    ASSERT_EQ(responses.size(), batch.size());

    NoGradGuard ng;
    for (size_t r = 0; r < batch.size(); ++r) {
        std::vector<int64_t> ctx = batch[r].prompt;
        for (int64_t step = 0; step < batch[r].maxNewTokens; ++step) {
            Tensor toks = Tensor::fromIndices(
                ctx, {1, static_cast<int64_t>(ctx.size())});
            Tensor logits = eager.forward(toks).data();
            Tensor last = logits.slice(0, logits.size(0) - 1,
                                       logits.size(0));
            ctx.push_back(argmaxLastDim(last).flatAtInt(0));
        }
        EXPECT_EQ(responses[r].tokens, ctx) << "request " << r;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// KV-cache incremental decode
// ---------------------------------------------------------------------

/** Artifact exercising one codec: "raw" hand-encodes every parameter
 *  as raw_f32; the other schemes go through the registry (fp16 ->
 *  dense_f16, rtn -> affine, edkm -> palettized). */
api::ModelArtifact
codecArtifact(nn::MiniLlama &model, const std::string &scheme)
{
    if (scheme == "raw") {
        api::ModelArtifact a;
        a.scheme = "raw";
        a.config = model.config();
        for (auto &[name, p] : model.namedParameters()) {
            a.entries.push_back(api::encodeRawF32(name, p.data()));
        }
        return a;
    }
    return compressTiny(model, scheme).artifact;
}

api::Codec
codecOf(const std::string &scheme)
{
    if (scheme == "fp16") {
        return api::Codec::kDenseF16;
    }
    if (scheme == "rtn") {
        return api::Codec::kAffine;
    }
    if (scheme == "edkm") {
        return api::Codec::kPalettized;
    }
    return api::Codec::kRawF32;
}

TEST(AttentionStep, ForwardStepMatchesFullForwardBitExact)
{
    Rng rng(9);
    nn::MultiHeadAttention attn(32, 4, rng);
    NoGradGuard ng;
    const int64_t s = 7, hd = 8;
    Tensor x = Tensor::randn({1, s, 32}, rng);
    Variable full = attn.forward(Variable(x)); // [1, s, 32]
    Tensor kc = Tensor::zeros({4, s, hd});
    Tensor vc = Tensor::zeros({4, s, hd});
    for (int64_t t = 0; t < s; ++t) {
        Tensor xt = x.slice(1, t, t + 1).contiguous();
        Variable yt = attn.forwardStep(Variable(xt), kc, vc, t);
        EXPECT_EQ(yt.data().toVector(),
                  full.data().slice(1, t, t + 1).contiguous().toVector())
            << "position " << t;
    }
}

/** Cached decode must produce logits bit-identical to the full-prefix
 *  forward for every codec an artifact can carry. */
class KvDecodeBitExact : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KvDecodeBitExact, DecodeStepLogitsMatchFullPrefixForward)
{
    nn::MiniLlama model = tinyModel();
    api::ModelArtifact art = codecArtifact(model, GetParam());
    bool has_codec = false;
    for (const api::ArtifactEntry &e : art.entries) {
        has_codec = has_codec || e.codec == codecOf(GetParam());
    }
    EXPECT_TRUE(has_codec) << "artifact exercises no " << GetParam()
                           << " section";
    std::string path = writeTemp(art.serialize(),
                                 std::string("edkm_test_kv_") +
                                     GetParam() + ".edkm");

    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    const nn::LlamaConfig &cfg = reader->config();

    NoGradGuard ng;
    std::vector<int64_t> ctx = {3, 17, 42, 5, 60};
    const int64_t steps = 4;
    serve::KvCache kv(cfg.layers, cfg.heads, cfg.dim / cfg.heads,
                      static_cast<int64_t>(ctx.size()) + steps);

    Tensor prompt = Tensor::fromIndices(
        ctx, {1, static_cast<int64_t>(ctx.size())});
    Tensor plogits = engine.prefill(prompt, kv);
    EXPECT_EQ(plogits.toVector(), engine.forward(prompt).toVector())
        << "prefill logits diverge from forward";
    EXPECT_EQ(kv.position(), static_cast<int64_t>(ctx.size()));

    Tensor last = plogits.slice(0, plogits.size(0) - 1,
                                plogits.size(0));
    int64_t next = argmaxLastDim(last).flatAtInt(0);
    for (int64_t step = 0; step < steps; ++step) {
        ctx.push_back(next);
        Tensor cached = engine.decodeStep(next, kv); // [1, vocab]
        Tensor full = engine.forward(Tensor::fromIndices(
            ctx, {1, static_cast<int64_t>(ctx.size())}));
        Tensor full_last =
            full.slice(0, full.size(0) - 1, full.size(0));
        EXPECT_EQ(cached.toVector(), full_last.contiguous().toVector())
            << GetParam() << " step " << step;
        next = argmaxLastDim(cached).flatAtInt(0);
    }

    // End to end: cached generate() == full-recompute generate().
    serve::EngineConfig full_cfg;
    full_cfg.kvCacheDecode = false;
    serve::InferenceEngine recompute(reader, full_cfg);
    serve::InferenceEngine::Request req{{9, 2, 33}, 5};
    EXPECT_EQ(engine.generate(req).tokens,
              recompute.generate(req).tokens);
    EXPECT_GT(engine.stats().decodeSteps, 0);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, KvDecodeBitExact,
                         ::testing::Values("raw", "fp16", "rtn",
                                           "edkm"));

TEST(KvCacheTest, OverflowThrowsNamingTheCapacity)
{
    serve::KvCache kv(2, 4, 8, 3);
    EXPECT_EQ(kv.capacity(), 3);
    kv.advance(3);
    try {
        kv.advance(1);
        FAIL() << "overflowing advance accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("capacity 3"),
                  std::string::npos)
            << e.what();
    }
    kv.reset();
    EXPECT_EQ(kv.position(), 0);
    kv.advance(2);
    Tensor rows = Tensor::zeros({4, 2, 8});
    try {
        kv.write(0, rows, rows); // 2 rows at position 2 > capacity 3
        FAIL() << "overflowing write accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("capacity 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(KvCacheTest, EngineRejectsRequestsOverTheConfiguredCapacity)
{
    nn::MiniLlama model = tinyModel();
    api::ModelArtifact art = codecArtifact(model, "raw");
    std::string path =
        writeTemp(art.serialize(), "edkm_test_kv_capacity.edkm");
    serve::EngineConfig cfg;
    cfg.kvCapacity = 4;
    serve::InferenceEngine engine(serve::ArtifactReader::open(path),
                                  cfg);
    // prompt 3 + 4 new tokens needs 6 cached positions > 4.
    try {
        engine.generate({{1, 2, 3}, 4});
        FAIL() << "over-capacity request accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("capacity"),
                  std::string::npos)
            << e.what();
    }
    // Within capacity it still serves: 3 + 2 - 1 = 4 positions.
    EXPECT_EQ(engine.generate({{1, 2, 3}, 2}).tokens.size(), 5u);
    std::remove(path.c_str());
}

TEST(KvCacheTest, ResetReuseRoundTripStaysExact)
{
    nn::MiniLlama model = tinyModel();
    api::ModelArtifact art = codecArtifact(model, "edkm");
    std::string path =
        writeTemp(art.serialize(), "edkm_test_kv_reuse.edkm");
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);

    serve::InferenceEngine::Request a{{1, 2, 3, 4}, 4};
    serve::InferenceEngine::Request b{{60, 5}, 6};
    auto a1 = engine.generate(a);
    auto b1 = engine.generate(b); // reuses (or regrows) the cache
    auto a2 = engine.generate(a); // round trip back to the first
    EXPECT_EQ(a1.tokens, a2.tokens);

    // A fresh engine agrees: reuse leaked no state across requests.
    serve::InferenceEngine fresh(reader);
    EXPECT_EQ(fresh.generate(b).tokens, b1.tokens);
    EXPECT_EQ(engine.stats().prefills, 3);
    ASSERT_NE(engine.kvCache(), nullptr);
    EXPECT_EQ(engine.stats().kvCacheBytes, engine.kvCache()->bytes());

    // Direct prefill -> reset -> prefill round trip is bit-stable too.
    NoGradGuard ng;
    const nn::LlamaConfig &cfg = reader->config();
    serve::KvCache kv(cfg.layers, cfg.heads, cfg.dim / cfg.heads, 8);
    Tensor toks = tokenBatch(1, 6, 64, 21);
    std::vector<float> first = engine.prefill(toks, kv).toVector();
    kv.reset();
    EXPECT_EQ(engine.prefill(toks, kv).toVector(), first);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ClusteredLinear LUT+index serving path
// ---------------------------------------------------------------------

TEST(ClusteredLinearServing, FrozenForwardMatchesDecompressedDense)
{
    Rng rng(41);
    auto inner = std::make_shared<nn::Linear>(24, 16, rng);
    EdkmConfig cfg;
    cfg.dkm.bits = 3;
    cfg.dkm.maxIters = 2;
    nn::ClusteredLinear layer(inner, cfg);

    layer.freezeForServing();
    ASSERT_TRUE(layer.frozenForServing());
    Tensor dense = layer.servingPalette().decompress();

    NoGradGuard ng;
    Tensor x = Tensor::randn({5, 24}, rng);
    Variable got = layer.forward(Variable(x));
    Tensor want = matmul(x, dense.transpose(0, 1));
    EXPECT_EQ(got.data().toVector(), want.toVector());

    layer.unfreeze();
    EXPECT_FALSE(layer.frozenForServing());
}

TEST(ClusteredLinearServing, FrozenForwardRejectsGradInputs)
{
    Rng rng(43);
    auto inner = std::make_shared<nn::Linear>(8, 4, rng);
    EdkmConfig cfg;
    cfg.dkm.bits = 2;
    cfg.dkm.maxIters = 1;
    nn::ClusteredLinear layer(inner, cfg);
    layer.freezeForServing();

    Variable x(Tensor::randn({2, 8}, rng), /*requires_grad=*/true);
    EXPECT_THROW(layer.forward(x), FatalError);
}

} // namespace
} // namespace edkm
