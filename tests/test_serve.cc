/**
 * @file
 * Tests for the serving surface: borrowed-mode Storage lifetime and
 * accounting, the streamed matmul's bit-identity with the dense kernel,
 * palette views, the v2 artifact container (round trip, alignment, v1
 * compatibility gate, fuzz-ish corruption rejection), ArtifactReader
 * zero-copy views, and InferenceEngine bit-exactness against the
 * eagerly reconstructed model for every codec.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

#include "api/plan.h"
#include "api/session.h"
#include "core/palettize.h"
#include "device/device_manager.h"
#include "nn/clustered_linear.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

nn::MiniLlama
tinyModel(uint64_t seed = 7)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = seed;
    return nn::MiniLlama(cfg);
}

/** Compress a tiny model with @p scheme (freeze-only) and return the
 *  artifact plus the in-memory model it matches. */
api::SessionResult
compressTiny(nn::MiniLlama &model, const std::string &scheme)
{
    api::CompressionPlan plan;
    plan.scheme = scheme;
    plan.bits = 4;
    plan.groupSize = 16;
    plan.dkmMaxIters = 2;
    api::CalibData calib;
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 16; ++i) {
        toks.push_back(rng.randint(0, 63));
    }
    calib.tokens = Tensor::fromIndices(toks, {2, 16});
    calib.trainConfig.steps = 0;
    api::Session session;
    return session.run(model, plan, std::move(calib));
}

std::string
writeTemp(const std::vector<uint8_t> &bytes, const std::string &name)
{
    std::string path = "/tmp/" + name;
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return path;
}

Tensor
tokenBatch(int64_t b, int64_t s, int64_t vocab, uint64_t seed)
{
    std::vector<int64_t> toks;
    Rng rng(seed);
    for (int64_t i = 0; i < b * s; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {b, s});
}

// ---------------------------------------------------------------------
// Borrowed-mode storage
// ---------------------------------------------------------------------

TEST(BorrowedStorage, RecordsNoAllocationAndFlagsItself)
{
    DeviceManager &mgr = DeviceManager::instance();
    int64_t before = mgr.stats(Device::cpu()).currentBytes;
    auto bytes = std::make_shared<std::vector<float>>(16, 1.5f);
    auto st = Storage::borrow(
        reinterpret_cast<const std::byte *>(bytes->data()),
        static_cast<int64_t>(bytes->size() * 4), Device::cpu(), bytes);
    EXPECT_TRUE(st->borrowed());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, before);

    auto owned = Storage::allocate(64, Device::cpu());
    EXPECT_FALSE(owned->borrowed());
    EXPECT_EQ(mgr.stats(Device::cpu()).currentBytes, before + 64);
}

TEST(BorrowedStorage, OwnerOutlivesEveryView)
{
    auto bytes = std::make_shared<std::vector<float>>(8);
    for (size_t i = 0; i < bytes->size(); ++i) {
        (*bytes)[i] = static_cast<float>(i) * 0.5f;
    }
    std::weak_ptr<std::vector<float>> watch = bytes;

    Tensor view;
    {
        auto st = Storage::borrow(
            reinterpret_cast<const std::byte *>(bytes->data()),
            static_cast<int64_t>(bytes->size() * 4), Device::cpu(),
            bytes);
        view = Tensor::wrapStorage(st, {2, 4}, {4, 1}, 0, DType::kF32);
        bytes.reset(); // the view must keep the buffer alive
    }
    ASSERT_FALSE(watch.expired());
    EXPECT_FLOAT_EQ(view.at({1, 3}), 3.5f);

    view = Tensor(); // last reference gone -> buffer released
    EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------
// Streamed matmul bit-identity
// ---------------------------------------------------------------------

/** fill that serves rows of a dense B, for equivalence testing. */
MatmulRowFill
denseFill(const Tensor &bT)
{
    const float *p = bT.rawData<float>();
    int64_t n = bT.size(1);
    return [p, n](int64_t p0, int64_t p1, float *dst) {
        std::memcpy(dst, p + p0 * n,
                    static_cast<size_t>((p1 - p0) * n) * 4);
    };
}

TEST(MatmulStreamed, BitIdenticalToDenseMatmul)
{
    Rng rng(11);
    // (m, k, n) covering the general, m==1 (vecmat) and n==1 (matvec)
    // kernel paths, plus a k large enough to span several tiles.
    for (auto [m, k, n] : std::vector<std::array<int64_t, 3>>{
             {5, 33, 17}, {1, 64, 48}, {7, 40, 1}, {3, 500, 300}}) {
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({k, n}, rng);
        Tensor want = matmul(a, b);
        Tensor got = matmulStreamed(a, k, n, denseFill(b));
        EXPECT_EQ(want.toVector(), got.toVector())
            << "m=" << m << " k=" << k << " n=" << n;
    }
}

// ---------------------------------------------------------------------
// Palette views
// ---------------------------------------------------------------------

TEST(PaletteView, RandomAccessUnpackMatchesSequential)
{
    Rng rng(5);
    for (int bits : {1, 2, 3, 4, 5, 7, 8, 11, 16}) {
        std::vector<int32_t> values;
        for (int i = 0; i < 61; ++i) {
            values.push_back(static_cast<int32_t>(
                rng.randint(0, (1 << bits) - 1)));
        }
        std::vector<uint8_t> packed = packBits(values, bits);
        std::vector<int32_t> seq =
            unpackBits(packed, bits, static_cast<int64_t>(values.size()));
        for (size_t i = 0; i < values.size(); ++i) {
            EXPECT_EQ(unpackBitsAt(packed.data(), bits,
                                   static_cast<int64_t>(i)),
                      seq[i])
                << "bits=" << bits << " i=" << i;
        }
    }
}

TEST(PaletteView, StreamedMatmulMatchesDecompressedDense)
{
    Rng rng(17);
    Tensor w = Tensor::randn({24, 40}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(w, 3, rng);
    Tensor dense = p.decompress();

    Tensor x = Tensor::randn({6, 40}, rng);
    Tensor want = matmul(x, dense.transpose(0, 1));
    Tensor got = paletteMatmulT(x, viewOf(p));
    EXPECT_EQ(want.toVector(), got.toVector());

    // Single-row input exercises the vecmat path.
    Tensor x1 = Tensor::randn({1, 40}, rng);
    EXPECT_EQ(matmul(x1, dense.transpose(0, 1)).toVector(),
              paletteMatmulT(x1, viewOf(p)).toVector());
}

TEST(PaletteView, ParseFromPayloadAndGatherRows)
{
    Rng rng(23);
    Tensor table = Tensor::randn({32, 12}, rng);
    PalettizedTensor p = PalettizedTensor::fromDense(table, 4, rng);
    std::vector<uint8_t> payload = p.serialize();

    auto owner = std::make_shared<std::vector<uint8_t>>(payload);
    PaletteView v =
        parsePaletteView(owner->data(), owner->size(), owner);
    EXPECT_EQ(v.bits, 4);
    EXPECT_EQ(v.shape, (Shape{32, 12}));
    EXPECT_EQ(v.lut, p.lut());

    Tensor toks = Tensor::fromIndices({0, 31, 7, 7, 16}, {5});
    Tensor want = gatherRows(p.decompress(), toks);
    Tensor got = paletteGatherRows(v, toks);
    EXPECT_EQ(want.toVector(), got.toVector());

    // Corrupt payloads are rejected, not mis-read.
    std::vector<uint8_t> bad = payload;
    bad[0] ^= 0xff; // magic
    EXPECT_THROW(parsePaletteView(bad.data(), bad.size(), nullptr),
                 FatalError);
    EXPECT_THROW(
        parsePaletteView(payload.data(), payload.size() - 3, nullptr),
        FatalError);
}

// ---------------------------------------------------------------------
// Artifact v2 container
// ---------------------------------------------------------------------

TEST(ArtifactV2, EmitsAlignedSectionsAndRoundTripsBitExact)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();

    ASSERT_TRUE(api::isArtifactV2(bytes.data(), bytes.size()));
    api::ArtifactLayout layout =
        api::parseArtifactLayout(bytes.data(), bytes.size());
    EXPECT_EQ(layout.scheme, "rtn");
    ASSERT_EQ(layout.sections.size(), res.artifact.entries.size());
    for (size_t i = 0; i < layout.sections.size(); ++i) {
        const api::TensorSection &s = layout.sections[i];
        EXPECT_EQ(s.offset % api::kArtifactAlign, 0) << s.name;
        EXPECT_EQ(s.name, res.artifact.entries[i].name);
        EXPECT_EQ(s.bytes, res.artifact.entries[i].payloadBytes());
    }

    api::ModelArtifact back = api::ModelArtifact::deserialize(bytes);
    ASSERT_EQ(back.entries.size(), res.artifact.entries.size());
    for (size_t i = 0; i < back.entries.size(); ++i) {
        EXPECT_EQ(back.entries[i].payload,
                  res.artifact.entries[i].payload)
            << back.entries[i].name;
    }
    // Serialisation is deterministic: same artifact, same bytes.
    EXPECT_EQ(bytes, back.serialize());
}

TEST(ArtifactV2, V1FilesStillLoadThroughTheVersionGate)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");

    std::vector<uint8_t> v1 = res.artifact.serializeV1();
    ASSERT_TRUE(api::isArtifactV1(v1.data(), v1.size()));
    std::string path = writeTemp(v1, "edkm_test_v1_artifact.edkm");

    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    nn::MiniLlama eager = res.artifact.reconstruct();
    nn::MiniLlama fromV1 = loaded.reconstruct();
    auto a = eager.namedParameters();
    auto b = fromV1.namedParameters();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].second.data().toVector(),
                  b[i].second.data().toVector())
            << a[i].first;
    }

    // The serving reader consumes v1 through its compat path too.
    auto reader = serve::ArtifactReader::open(path);
    EXPECT_EQ(reader->version(), api::kArtifactVersionV1);
    EXPECT_EQ(reader->scheme(), res.artifact.scheme);
    EXPECT_EQ(reader->fileBytes(), static_cast<int64_t>(v1.size()));
    serve::InferenceEngine engine(reader);
    Tensor toks = tokenBatch(1, 6, 64, 31);
    NoGradGuard ng;
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    std::remove(path.c_str());
}

TEST(ArtifactV2, CorruptionIsRejectedWithTheSectionNamed)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::vector<uint8_t> bytes = res.artifact.serialize();

    // Version bump -> actionable error.
    {
        std::vector<uint8_t> bad = bytes;
        uint32_t v = 9;
        std::memcpy(bad.data() + 8, &v, 4);
        try {
            api::parseArtifactLayout(bad.data(), bad.size());
            FAIL() << "version 9 accepted";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos);
        }
    }
    // Misaligned first section -> error names it.
    {
        std::vector<uint8_t> bad = bytes;
        uint64_t table_off;
        std::memcpy(&table_off, bad.data() + 32, 8);
        uint64_t off;
        std::memcpy(&off, bad.data() + table_off, 8);
        off += 4;
        std::memcpy(bad.data() + table_off, &off, 8);
        try {
            api::parseArtifactLayout(bad.data(), bad.size());
            FAIL() << "misaligned section accepted";
        } catch (const FatalError &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("aligned"), std::string::npos) << msg;
            EXPECT_NE(msg.find(res.artifact.entries[0].name),
                      std::string::npos)
                << msg;
        }
    }
    // Section running past the file end.
    {
        std::vector<uint8_t> bad = bytes;
        uint64_t table_off;
        std::memcpy(&table_off, bad.data() + 32, 8);
        uint64_t huge = bad.size();
        std::memcpy(bad.data() + table_off + 8, &huge, 8);
        EXPECT_THROW(api::parseArtifactLayout(bad.data(), bad.size()),
                     FatalError);
    }
    // Every strict prefix is rejected (fuzz-ish truncation sweep) and
    // never reads out of bounds.
    for (size_t cut = 0; cut < bytes.size();
         cut += 97) { // prime stride keeps the sweep cheap
        std::vector<uint8_t> trunc(
            bytes.begin(), bytes.begin() + static_cast<int64_t>(cut));
        EXPECT_THROW(api::ModelArtifact::deserialize(trunc), FatalError)
            << "prefix of " << cut << " bytes accepted";
    }
    // Appended garbage is caught by the declared file size.
    std::vector<uint8_t> padded = bytes;
    padded.resize(padded.size() + 13, 0xcd);
    EXPECT_THROW(api::ModelArtifact::deserialize(padded), FatalError);
}

// ---------------------------------------------------------------------
// ArtifactReader
// ---------------------------------------------------------------------

TEST(Reader, ZeroCopyViewsMatchEagerDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_reader.edkm");

    auto reader = serve::ArtifactReader::open(path);
    EXPECT_EQ(reader->version(), api::kArtifactVersionV2);
    for (const api::TensorSection &s : reader->sections()) {
        Tensor decoded = reader->decode(s.name);
        EXPECT_EQ(decoded.toVector(),
                  res.artifact.entry(s.name).decode().toVector())
            << s.name;
        if (s.codec == api::Codec::kRawF32) {
            Tensor view = reader->denseView(s.name);
            EXPECT_TRUE(view.storagePtr()->borrowed());
            EXPECT_EQ(view.toVector(), decoded.toVector()) << s.name;
        } else if (s.codec == api::Codec::kPalettized) {
            PaletteView v = reader->paletteView(s.name);
            EXPECT_EQ(paletteGatherRows(
                          v, Tensor::arange(0, v.shape[0]))
                          .toVector(),
                      decoded.toVector())
                << s.name;
        }
    }
    std::remove(path.c_str());
}

TEST(Reader, ViewsKeepTheMappingAliveAfterTheReaderDies)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_lifetime.edkm");

    Tensor view;
    std::vector<float> want;
    {
        auto reader = serve::ArtifactReader::open(path);
        view = reader->denseView("final_norm.weight");
        want = reader->decode("final_norm.weight").toVector();
    } // reader gone; the borrowed storage pins the mapping
    EXPECT_EQ(view.toVector(), want);
    std::remove(path.c_str());
}

TEST(Reader, ReadFallbackServesIdenticalBytes)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "rtn");
    std::string path =
        writeTemp(res.artifact.serialize(), "edkm_test_fallback.edkm");

    auto mapped = serve::ArtifactReader::open(path);
    ::setenv("EDKM_NO_MMAP", "1", 1);
    auto fallback = serve::ArtifactReader::open(path);
    ::unsetenv("EDKM_NO_MMAP");
    EXPECT_FALSE(fallback->mapped());
    for (const api::TensorSection &s : mapped->sections()) {
        EXPECT_EQ(mapped->decode(s.name).toVector(),
                  fallback->decode(s.name).toVector())
            << s.name;
    }
    std::remove(path.c_str());
}

TEST(Reader, MissingFileAndBadMagicFailActionably)
{
    EXPECT_THROW(
        serve::ArtifactReader::open("/tmp/edkm_no_such_file.edkm"),
        FatalError);
    std::string path = writeTemp(
        std::vector<uint8_t>(128, 0x5a), "edkm_test_badmagic.edkm");
    EXPECT_THROW(serve::ArtifactReader::open(path), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------

/** Engine logits must be bit-identical to the eager model's for every
 *  codec an artifact can carry. */
class EngineBitExact : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineBitExact, ForwardMatchesEagerReconstruct)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, GetParam());
    std::string path = writeTemp(res.artifact.serialize(),
                                 std::string("edkm_test_engine_") +
                                     GetParam() + ".edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);

    NoGradGuard ng;
    for (auto [b, s] : std::vector<std::pair<int64_t, int64_t>>{
             {2, 8}, {1, 1}}) {
        Tensor toks = tokenBatch(b, s, 64, 7 + static_cast<uint64_t>(s));
        EXPECT_EQ(engine.forward(toks).toVector(),
                  eager.forward(toks).data().toVector())
            << GetParam() << " b=" << b << " s=" << s;
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, EngineBitExact,
                         ::testing::Values("fp16", "rtn", "edkm"));

TEST(Engine, TinyCacheBudgetEvictsButStaysExact)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "fp16"); // all f16
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_lru.edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::EngineConfig cfg;
    cfg.decodeCacheBytes = 16 << 10; // far below the working set
    serve::InferenceEngine engine(reader, cfg);

    NoGradGuard ng;
    Tensor toks = tokenBatch(2, 6, 64, 13);
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    EXPECT_GT(engine.stats().evictions, 0);
    EXPECT_LE(engine.residentWeightBytes(), 16 << 10);

    // A second forward still answers exactly after evictions.
    EXPECT_EQ(engine.forward(toks).toVector(),
              eager.forward(toks).data().toVector());
    std::remove(path.c_str());
}

TEST(Engine, PalettizedLayersStreamWithoutDenseDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_stream.edkm");

    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    NoGradGuard ng;
    engine.forward(tokenBatch(1, 4, 64, 3));
    // eDKM palettizes every Linear and the embedding: no dense decode
    // happens at all, every matmul streams LUT+index tiles.
    EXPECT_EQ(engine.stats().decodes, 0);
    EXPECT_EQ(engine.residentWeightBytes(), 0);
    EXPECT_GT(engine.stats().streamedMatmuls, 0);
    EXPECT_GT(engine.stats().borrowedViews, 0);
    std::remove(path.c_str());
}

TEST(Engine, BatchedGenerateMatchesEagerGreedyDecode)
{
    nn::MiniLlama model = tinyModel();
    api::SessionResult res = compressTiny(model, "edkm");
    std::string path = writeTemp(res.artifact.serialize(),
                                 "edkm_test_engine_gen.edkm");

    nn::MiniLlama eager = res.artifact.reconstruct();
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);

    std::vector<serve::InferenceEngine::Request> batch = {
        {{1, 2, 3}, 4}, {{60, 5}, 3}};
    auto responses = engine.generate(batch);
    ASSERT_EQ(responses.size(), batch.size());

    NoGradGuard ng;
    for (size_t r = 0; r < batch.size(); ++r) {
        std::vector<int64_t> ctx = batch[r].prompt;
        for (int64_t step = 0; step < batch[r].maxNewTokens; ++step) {
            Tensor toks = Tensor::fromIndices(
                ctx, {1, static_cast<int64_t>(ctx.size())});
            Tensor logits = eager.forward(toks).data();
            Tensor last = logits.slice(0, logits.size(0) - 1,
                                       logits.size(0));
            ctx.push_back(argmaxLastDim(last).flatAtInt(0));
        }
        EXPECT_EQ(responses[r].tokens, ctx) << "request " << r;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ClusteredLinear LUT+index serving path
// ---------------------------------------------------------------------

TEST(ClusteredLinearServing, FrozenForwardMatchesDecompressedDense)
{
    Rng rng(41);
    auto inner = std::make_shared<nn::Linear>(24, 16, rng);
    EdkmConfig cfg;
    cfg.dkm.bits = 3;
    cfg.dkm.maxIters = 2;
    nn::ClusteredLinear layer(inner, cfg);

    layer.freezeForServing();
    ASSERT_TRUE(layer.frozenForServing());
    Tensor dense = layer.servingPalette().decompress();

    NoGradGuard ng;
    Tensor x = Tensor::randn({5, 24}, rng);
    Variable got = layer.forward(Variable(x));
    Tensor want = matmul(x, dense.transpose(0, 1));
    EXPECT_EQ(got.data().toVector(), want.toVector());

    layer.unfreeze();
    EXPECT_FALSE(layer.frozenForServing());
}

TEST(ClusteredLinearServing, FrozenForwardRejectsGradInputs)
{
    Rng rng(43);
    auto inner = std::make_shared<nn::Linear>(8, 4, rng);
    EdkmConfig cfg;
    cfg.dkm.bits = 2;
    cfg.dkm.maxIters = 1;
    nn::ClusteredLinear layer(inner, cfg);
    layer.freezeForServing();

    Variable x(Tensor::randn({2, 8}, rng), /*requires_grad=*/true);
    EXPECT_THROW(layer.forward(x), FatalError);
}

} // namespace
} // namespace edkm
