/**
 * @file
 * Continuous-batching scheduler tests. The load-bearing contract is
 * bit-identity: whatever the batch size, admission order, prefill
 * chunking or prefix-cache state, every request's tokens must equal the
 * ones a lone InferenceEngine::generate produces — for every codec an
 * artifact can carry. Also covers the engine's chunked-prefill and
 * batched-decode primitives directly, prefix-cache churn (eviction
 * exactness at tight byte budgets, partial-prefix reuse, reuse after
 * eviction), failure isolation, and the metrics JSON surface.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "serve/engine.h"
#include "serve/prefix_cache.h"
#include "serve/reader.h"
#include "serve/scheduler.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

nn::MiniLlama
tinyModel(uint64_t seed = 7)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = seed;
    return nn::MiniLlama(cfg);
}

/** Artifact exercising one codec, saved to /tmp: "raw" hand-encodes
 *  raw_f32; fp16 / rtn / edkm go through the compression registry
 *  (dense_f16 / affine / palettized). Returns the path. */
std::string
savedCodecArtifact(const std::string &scheme, const std::string &tag)
{
    nn::MiniLlama model = tinyModel();
    api::ModelArtifact art;
    if (scheme == "raw") {
        art.scheme = "raw";
        art.config = model.config();
        for (auto &[name, p] : model.namedParameters()) {
            art.entries.push_back(api::encodeRawF32(name, p.data()));
        }
    } else {
        api::CompressionPlan plan;
        plan.scheme = scheme;
        plan.bits = 4;
        plan.groupSize = 16;
        plan.dkmMaxIters = 2;
        api::CalibData calib;
        std::vector<int64_t> toks;
        Rng rng(3);
        for (int i = 0; i < 2 * 16; ++i) {
            toks.push_back(rng.randint(0, 63));
        }
        calib.tokens = Tensor::fromIndices(toks, {2, 16});
        calib.trainConfig.steps = 0;
        api::Session session;
        art = session.run(model, plan, std::move(calib)).artifact;
    }
    std::string path =
        "/tmp/edkm_test_sched_" + scheme + "_" + tag + ".edkm";
    std::vector<uint8_t> bytes = art.serialize();
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return path;
}

/** A deterministic mixed bag of generation requests. */
std::vector<serve::InferenceEngine::Request>
requestMix(int count, uint64_t seed, int64_t min_new = 0)
{
    std::vector<serve::InferenceEngine::Request> out;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
        serve::InferenceEngine::Request r;
        int64_t prompt_len = 1 + rng.randint(0, 5);
        for (int64_t t = 0; t < prompt_len; ++t) {
            r.prompt.push_back(rng.randint(0, 63));
        }
        r.maxNewTokens = min_new + rng.randint(0, 6 - min_new);
        out.push_back(std::move(r));
    }
    return out;
}

/** Serial reference: each request alone through generate(). */
std::vector<std::vector<int64_t>>
serialReference(std::shared_ptr<const serve::ArtifactReader> reader,
                const std::vector<serve::InferenceEngine::Request> &reqs)
{
    serve::InferenceEngine engine(reader);
    std::vector<std::vector<int64_t>> out;
    for (const auto &r : reqs) {
        out.push_back(engine.generate(r).tokens);
    }
    return out;
}

/**
 * Drive a scheduler with a RANDOMIZED admission interleaving: before
 * each step an Rng admits between zero and all currently-admittable
 * requests, so prefills and decodes of different requests mix in
 * arbitrary ways. Returns responses in request order.
 */
std::vector<std::vector<int64_t>>
runInterleaved(serve::BatchScheduler &sched,
               std::vector<serve::InferenceEngine::Request> reqs,
               uint64_t seed)
{
    std::vector<std::vector<int64_t>> out(reqs.size());
    std::vector<std::exception_ptr> errors(reqs.size());
    size_t next = 0, completed = 0;
    Rng rng(seed);
    while (completed < reqs.size()) {
        int64_t admits = rng.randint(0, 3);
        while (admits-- > 0 && next < reqs.size() &&
               sched.hasCapacity()) {
            size_t idx = next++;
            sched.admit(std::move(reqs[idx]),
                        [&out, &errors, &completed, idx](
                            serve::BatchScheduler::Response &&res,
                            std::exception_ptr err,
                            const serve::SchedulerRequestStats &) {
                            out[idx] = std::move(res.tokens);
                            errors[idx] = err;
                            ++completed;
                        });
        }
        sched.step();
    }
    for (const std::exception_ptr &err : errors) {
        if (err != nullptr) {
            std::rethrow_exception(err);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Batched decode == serial decode, per codec
// ---------------------------------------------------------------------

class SchedulerBitExact : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SchedulerBitExact, BatchedMatchesSerialAcrossBatchSizes)
{
    std::string path = savedCodecArtifact(GetParam(), "bitexact");
    auto reader = serve::ArtifactReader::open(path);

    std::vector<serve::InferenceEngine::Request> reqs =
        requestMix(24, 17);
    std::vector<std::vector<int64_t>> want =
        serialReference(reader, reqs);

    for (int max_batch : {2, 4, 8}) {
        serve::InferenceEngine engine(reader);
        serve::SchedulerConfig cfg;
        cfg.maxBatch = max_batch;
        serve::BatchScheduler sched(engine, cfg);
        std::vector<std::vector<int64_t>> got = runInterleaved(
            sched, reqs, 100 + static_cast<uint64_t>(max_batch));
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], want[i])
                << GetParam() << " maxBatch=" << max_batch
                << " request " << i;
        }
        EXPECT_EQ(sched.stats().completed,
                  static_cast<int64_t>(reqs.size()));
        EXPECT_EQ(sched.stats().failed, 0);
    }
    std::remove(path.c_str());
}

TEST_P(SchedulerBitExact, ChunkedPrefillAndPrefixCacheStayExact)
{
    std::string path = savedCodecArtifact(GetParam(), "chunked");
    auto reader = serve::ArtifactReader::open(path);

    // Long prompts sharing an 8-token head, divergent tails, so the
    // prefix cache and the chunked prefill both engage.
    std::vector<serve::InferenceEngine::Request> reqs;
    Rng rng(29);
    std::vector<int64_t> head;
    for (int t = 0; t < 8; ++t) {
        head.push_back(rng.randint(0, 63));
    }
    for (int i = 0; i < 12; ++i) {
        serve::InferenceEngine::Request r;
        r.prompt = head;
        int64_t tail = 1 + rng.randint(0, 4);
        for (int64_t t = 0; t < tail; ++t) {
            r.prompt.push_back(rng.randint(0, 63));
        }
        r.maxNewTokens = 1 + rng.randint(0, 5);
        reqs.push_back(std::move(r));
    }
    std::vector<std::vector<int64_t>> want =
        serialReference(reader, reqs);

    serve::InferenceEngine engine(reader);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.prefillChunkTokens = 3; // force multi-chunk prompts
    cfg.prefixCacheBytes = 1 << 20;
    serve::BatchScheduler sched(engine, cfg);
    std::vector<std::vector<int64_t>> got =
        runInterleaved(sched, reqs, 31);
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << GetParam() << " request " << i;
    }
    // The shared head must actually have been reused, not recomputed.
    EXPECT_GT(sched.prefixStats().hits, 0);
    EXPECT_GT(sched.prefixStats().reusedTokens, 0);
    EXPECT_GT(sched.stats().prefillChunks,
              static_cast<int64_t>(reqs.size()));
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Codecs, SchedulerBitExact,
                         ::testing::Values("raw", "fp16", "rtn",
                                           "edkm"));

// ---------------------------------------------------------------------
// Engine primitives: chunked prefill and batched decode
// ---------------------------------------------------------------------

TEST(PrefillChunk, AnyChunkingMatchesOneShotPrefillBitExact)
{
    std::string path = savedCodecArtifact("edkm", "prefillchunk");
    auto reader = serve::ArtifactReader::open(path);
    const nn::LlamaConfig &cfg = reader->config();
    serve::InferenceEngine engine(reader);
    NoGradGuard ng;

    std::vector<int64_t> prompt = {3, 17, 42, 5, 60, 11, 9, 33, 2, 58};
    int64_t n = static_cast<int64_t>(prompt.size());
    serve::KvCache full_kv(cfg.layers, cfg.heads, cfg.dim / cfg.heads,
                           16);
    Tensor full =
        engine.prefill(Tensor::fromIndices(prompt, {1, n}), full_kv);

    for (int64_t chunk : {1, 3, 4, 10}) {
        serve::KvCache kv(cfg.layers, cfg.heads, cfg.dim / cfg.heads,
                          16);
        std::vector<float> got;
        for (int64_t p0 = 0; p0 < n; p0 += chunk) {
            int64_t c = std::min(chunk, n - p0);
            std::vector<int64_t> piece(prompt.begin() + p0,
                                       prompt.begin() + p0 + c);
            Tensor logits = engine.prefillChunk(
                Tensor::fromIndices(piece, {1, c}), kv);
            std::vector<float> rows = logits.toVector();
            got.insert(got.end(), rows.begin(), rows.end());
        }
        EXPECT_EQ(kv.position(), n);
        EXPECT_EQ(got, full.toVector()) << "chunk size " << chunk;
    }
    std::remove(path.c_str());
}

TEST(DecodeStepBatch, RowsMatchSingleRequestDecodeStepsBitExact)
{
    std::string path = savedCodecArtifact("edkm", "stepbatch");
    auto reader = serve::ArtifactReader::open(path);
    const nn::LlamaConfig &cfg = reader->config();
    serve::InferenceEngine engine(reader);
    NoGradGuard ng;

    // Three requests at DIFFERENT positions; prefill each prompt twice
    // (prefill is deterministic) to get independent serial/batched
    // cache pairs.
    std::vector<std::vector<int64_t>> prompts = {
        {3, 17, 42}, {5}, {60, 11, 9, 33, 2}};
    const int64_t kCap = 16, kSteps = 3;
    std::vector<std::unique_ptr<serve::KvCache>> serial, batched;
    std::vector<int64_t> next;
    for (const auto &p : prompts) {
        int64_t n = static_cast<int64_t>(p.size());
        Tensor toks = Tensor::fromIndices(p, {1, n});
        auto a = std::make_unique<serve::KvCache>(
            cfg.layers, cfg.heads, cfg.dim / cfg.heads, kCap);
        auto b = std::make_unique<serve::KvCache>(
            cfg.layers, cfg.heads, cfg.dim / cfg.heads, kCap);
        Tensor logits = engine.prefill(toks, *a);
        engine.prefill(toks, *b);
        Tensor last = logits.slice(0, n - 1, n);
        next.push_back(argmaxLastDim(last).flatAtInt(0));
        serial.push_back(std::move(a));
        batched.push_back(std::move(b));
    }

    std::vector<int64_t> next_serial = next, next_batched = next;
    for (int64_t step = 0; step < kSteps; ++step) {
        std::vector<serve::KvCache *> kvs;
        for (auto &kv : batched) {
            kvs.push_back(kv.get());
        }
        Tensor blogits = engine.decodeStepBatch(next_batched, kvs);
        for (size_t i = 0; i < prompts.size(); ++i) {
            Tensor slogits =
                engine.decodeStep(next_serial[i], *serial[i]);
            Tensor brow = blogits.slice(0, static_cast<int64_t>(i),
                                        static_cast<int64_t>(i) + 1);
            EXPECT_EQ(brow.contiguous().toVector(), slogits.toVector())
                << "request " << i << " step " << step;
            next_serial[i] = argmaxLastDim(slogits).flatAtInt(0);
            next_batched[i] =
                argmaxLastDim(brow.contiguous()).flatAtInt(0);
            EXPECT_EQ(next_serial[i], next_batched[i]);
            EXPECT_EQ(serial[i]->position(), batched[i]->position());
        }
    }

    // Guard rails: duplicate caches and size mismatches are rejected.
    std::vector<int64_t> two_toks = {1, 2};
    std::vector<int64_t> one_tok = {1};
    std::vector<serve::KvCache *> dup = {batched[0].get(),
                                         batched[0].get()};
    std::vector<serve::KvCache *> pair = {batched[0].get(),
                                          batched[1].get()};
    EXPECT_THROW(engine.decodeStepBatch(two_toks, dup), FatalError);
    EXPECT_THROW(engine.decodeStepBatch(one_tok, pair), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Prefix cache churn
// ---------------------------------------------------------------------

/** Fill @p kv with deterministic rows derived from @p seed. */
void
fillCache(serve::KvCache &kv, int64_t positions, uint64_t seed)
{
    Rng rng(seed);
    for (int64_t p = 0; p < positions; ++p) {
        for (int64_t l = 0; l < kv.layers(); ++l) {
            Tensor k = Tensor::randn({kv.groups(), 1, kv.headDim()},
                                     rng);
            Tensor v = Tensor::randn({kv.groups(), 1, kv.headDim()},
                                     rng);
            kv.write(l, k, v);
        }
        kv.advance(1);
    }
}

TEST(PrefixCacheChurn, EvictionIsExactAtTightByteBudgets)
{
    const int64_t L = 2, G = 2, HD = 8;
    const int64_t perTok = 2 * L * G * HD *
                           static_cast<int64_t>(sizeof(float));
    // Budget fits exactly two 2-token heads and not a byte more.
    serve::PrefixCache cache(L, G, HD, 4 * perTok);

    serve::KvCache kv(L, G, HD, 8);
    fillCache(kv, 2, 1);
    cache.insert({10, 11}, 2, kv);
    kv.reset();
    fillCache(kv, 2, 2);
    cache.insert({20, 21}, 2, kv);
    EXPECT_EQ(cache.stats().bytes, 4 * perTok);
    EXPECT_EQ(cache.stats().entries, 2);
    EXPECT_EQ(cache.stats().evictions, 0);

    // Touch {10,11} so {20,21} is the LRU victim of the next insert.
    serve::KvCache probe(L, G, HD, 8);
    EXPECT_EQ(cache.lookup({10, 11, 99}, 2, probe), 2);

    kv.reset();
    fillCache(kv, 2, 3);
    cache.insert({30, 31}, 2, kv);
    EXPECT_EQ(cache.stats().bytes, 4 * perTok); // never over budget
    EXPECT_EQ(cache.stats().entries, 2);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.stats().evictedBytes, 2 * perTok);

    // The LRU entry went, the touched and new entries stayed.
    probe.reset();
    EXPECT_EQ(cache.lookup({20, 21, 99}, 2, probe), 0);
    probe.reset();
    EXPECT_EQ(cache.lookup({10, 11, 99}, 2, probe), 2);
    probe.reset();
    EXPECT_EQ(cache.lookup({30, 31, 99}, 2, probe), 2);

    // A head larger than the whole budget is rejected, not thrashed.
    serve::KvCache big(L, G, HD, 8);
    fillCache(big, 6, 4);
    int64_t before = cache.stats().entries;
    cache.insert({1, 2, 3, 4, 5, 6}, 6, big);
    EXPECT_EQ(cache.stats().rejected, 1);
    EXPECT_EQ(cache.stats().entries, before);
    EXPECT_EQ(cache.stats().bytes, 4 * perTok);
}

TEST(PrefixCacheChurn, PartialPrefixRestoresSharedHeadRowsExactly)
{
    const int64_t L = 2, G = 2, HD = 8;
    serve::PrefixCache cache(L, G, HD, 1 << 20);
    serve::KvCache kv(L, G, HD, 8);
    fillCache(kv, 6, 5);
    cache.insert({1, 2, 3, 4, 5, 6}, 6, kv);

    // Prompt shares only the first three tokens: exactly those three
    // positions restore, bit-identical to the banked rows.
    serve::KvCache target(L, G, HD, 8);
    EXPECT_EQ(cache.lookup({1, 2, 3, 9, 9, 9}, 5, target), 3);
    EXPECT_EQ(target.position(), 3);
    for (int64_t l = 0; l < L; ++l) {
        EXPECT_EQ(target.k(l).slice(1, 0, 3).contiguous().toVector(),
                  kv.k(l).slice(1, 0, 3).contiguous().toVector());
        EXPECT_EQ(target.v(l).slice(1, 0, 3).contiguous().toVector(),
                  kv.v(l).slice(1, 0, 3).contiguous().toVector());
    }
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().reusedTokens, 3);

    // max_len caps the restore even when more matches.
    serve::KvCache capped(L, G, HD, 8);
    EXPECT_EQ(cache.lookup({1, 2, 3, 4, 5, 6}, 4, capped), 4);

    // No shared head at all: a miss leaves the cache untouched.
    serve::KvCache miss(L, G, HD, 8);
    EXPECT_EQ(cache.lookup({9, 9, 9}, 3, miss), 0);
    EXPECT_EQ(miss.position(), 0);
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PrefixCacheChurn, ReuseAfterEvictionRePrefillsBitIdentical)
{
    std::string path = savedCodecArtifact("edkm", "evictreuse");
    auto reader = serve::ArtifactReader::open(path);

    serve::InferenceEngine::Request a{{1, 2, 3, 4, 5, 6, 7, 8}, 4};
    serve::InferenceEngine::Request b{{60, 61, 62, 63, 50, 51, 52, 53},
                                      4};
    std::vector<std::vector<int64_t>> want =
        serialReference(reader, {a, b, a});

    serve::InferenceEngine engine(reader);
    const nn::LlamaConfig &m = reader->config();
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 1; // serialize so eviction order is deterministic
    // Budget fits exactly one banked 8-token head (prompt + 3 decoded
    // positions land in the cache; only the 8-token prompt is banked).
    cfg.prefixCacheBytes = 2 * m.layers * m.heads * 8 *
                           (m.dim / m.heads) *
                           static_cast<int64_t>(sizeof(float));
    serve::BatchScheduler sched(engine, cfg);

    // a banks its head; b's insert evicts it; the repeat of a misses
    // and re-prefills from scratch — tokens must not change at all.
    std::vector<serve::BatchScheduler::Response> got =
        sched.run({a, b, a});
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].tokens, want[0]);
    EXPECT_EQ(got[1].tokens, want[1]);
    EXPECT_EQ(got[2].tokens, want[2]);
    EXPECT_GE(sched.prefixStats().evictions, 1);
    EXPECT_EQ(sched.prefixStats().hits, 0); // heads share no prefix
    EXPECT_EQ(sched.prefixStats().misses, 3);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Failure isolation and metrics
// ---------------------------------------------------------------------

TEST(Scheduler, FailuresCompleteThroughCallbacksWithoutWedging)
{
    std::string path = savedCodecArtifact("rtn", "failures");
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.kvCapacity = 8;
    serve::BatchScheduler sched(engine, cfg);

    int failures = 0, successes = 0;
    auto count = [&](serve::BatchScheduler::Response &&,
                     std::exception_ptr err,
                     const serve::SchedulerRequestStats &) {
        (err != nullptr ? failures : successes)++;
    };

    // Empty prompt and over-capacity requests fail at admission, from
    // inside admit(), without occupying a slot.
    sched.admit({{}, 2}, count);
    sched.admit({{1, 2, 3}, 100}, count); // needs 102 > capacity 8
    EXPECT_EQ(failures, 2);
    EXPECT_EQ(sched.active(), 0);

    // maxNewTokens == 0 completes immediately with just the prompt.
    std::vector<int64_t> echoed;
    sched.admit({{4, 5, 6}, 0},
                [&](serve::BatchScheduler::Response &&res,
                    std::exception_ptr err,
                    const serve::SchedulerRequestStats &) {
                    ASSERT_EQ(err, nullptr);
                    echoed = std::move(res.tokens);
                });
    EXPECT_EQ(echoed, (std::vector<int64_t>{4, 5, 6}));

    // The loop still serves real work afterwards.
    sched.admit({{7, 8}, 3}, count);
    while (sched.busy()) {
        sched.step();
    }
    EXPECT_EQ(successes, 1);
    EXPECT_EQ(sched.stats().failed, 2);
    // completed counts successes only; the reconciliation identity is
    // admitted == completed + failed + deadlineEvicted + released.
    EXPECT_EQ(sched.stats().completed, 2);
    EXPECT_EQ(sched.stats().admitted,
              sched.stats().completed + sched.stats().failed +
                  sched.stats().deadlineEvicted + sched.stats().released);
    std::remove(path.c_str());
}

TEST(Scheduler, StatsJsonCarriesHistogramAndPrefixCounters)
{
    std::string path = savedCodecArtifact("fp16", "stats");
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 4;
    cfg.prefixCacheBytes = 1 << 20;
    serve::BatchScheduler sched(engine, cfg);
    sched.run(requestMix(12, 41, /*min_new=*/1));

    const serve::SchedulerStats &st = sched.stats();
    EXPECT_EQ(st.completed, 12);
    int64_t histo_steps = 0;
    for (size_t b = 1; b < st.batchHistogram.size(); ++b) {
        histo_steps += st.batchHistogram[b];
    }
    EXPECT_EQ(histo_steps, st.steps); // every step lands in one bucket
    EXPECT_GT(st.peakBatch, 1);

    std::string json = sched.statsJson();
    for (const char *key :
         {"\"admitted\"", "\"decode_steps\"", "\"batch_histogram\"",
          "\"prefill_chunks\"", "\"peak_batch\"", "\"prefix_cache\"",
          "\"hits\"", "\"evicted_bytes\"", "\"deadline_evicted\"",
          "\"released\"", "\"generation\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Deadlines, cancellation, hot engine swap
// ---------------------------------------------------------------------

TEST(Scheduler, DeadlineEvictionBetweenStepsKeepsSurvivorBitIdentical)
{
    std::string path = savedCodecArtifact("rtn", "deadline");
    auto reader = serve::ArtifactReader::open(path);

    serve::InferenceEngine::Request survivor{{1, 2, 3}, 40};
    std::vector<std::vector<int64_t>> want =
        serialReference(reader, {survivor});

    serve::InferenceEngine engine(reader);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 4;
    serve::BatchScheduler sched(engine, cfg);

    std::vector<int64_t> got;
    sched.admit(survivor,
                [&](serve::BatchScheduler::Response &&res,
                    std::exception_ptr err,
                    const serve::SchedulerRequestStats &) {
                    ASSERT_EQ(err, nullptr);
                    got = std::move(res.tokens);
                });

    serve::InferenceEngine::Request doomed{{4, 5}, 300};
    doomed.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    std::exception_ptr doomed_err;
    int64_t doomed_tokens = -1;
    sched.admit(doomed,
                [&](serve::BatchScheduler::Response &&,
                    std::exception_ptr err,
                    const serve::SchedulerRequestStats &st) {
                    doomed_err = err;
                    doomed_tokens = st.newTokens;
                });

    // A few shared steps, then let the deadline lapse; the next step
    // must evict the expired slot before any forward.
    for (int i = 0; i < 3 && sched.busy(); ++i) {
        sched.step();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    while (sched.busy()) {
        sched.step();
    }

    ASSERT_NE(doomed_err, nullptr);
    try {
        std::rethrow_exception(doomed_err);
    } catch (const serve::DeadlineExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("deadline exceeded"),
                  std::string::npos);
    }
    EXPECT_GT(doomed_tokens, 0);   // it made progress first
    EXPECT_LT(doomed_tokens, 300); // and was cut off
    // The survivor never noticed: bit-identical to serving it alone.
    EXPECT_EQ(got, want[0]);
    EXPECT_EQ(sched.stats().deadlineEvicted, 1);
    EXPECT_EQ(sched.stats().completed, 1);
    EXPECT_EQ(sched.stats().admitted,
              sched.stats().completed + sched.stats().failed +
                  sched.stats().deadlineEvicted + sched.stats().released);
    std::remove(path.c_str());
}

TEST(Scheduler, ExpiredAndPreCancelledRequestsNeverTakeASlot)
{
    std::string path = savedCodecArtifact("fp16", "preexpired");
    auto reader = serve::ArtifactReader::open(path);
    serve::InferenceEngine engine(reader);
    serve::BatchScheduler sched(engine, serve::SchedulerConfig{});

    serve::InferenceEngine::Request late{{1, 2}, 5};
    late.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
    bool late_done = false;
    sched.admit(late, [&](serve::BatchScheduler::Response &&,
                          std::exception_ptr err,
                          const serve::SchedulerRequestStats &) {
        late_done = true;
        EXPECT_THROW(std::rethrow_exception(err),
                     serve::DeadlineExceeded);
    });
    EXPECT_TRUE(late_done);
    EXPECT_EQ(sched.active(), 0);
    EXPECT_EQ(sched.stats().deadlineEvicted, 1);

    serve::InferenceEngine::Request dead{{3, 4}, 5};
    dead.cancel = std::make_shared<serve::CancelToken>();
    dead.cancel->requestCancel();
    bool dead_done = false;
    sched.admit(dead, [&](serve::BatchScheduler::Response &&,
                          std::exception_ptr err,
                          const serve::SchedulerRequestStats &) {
        dead_done = true;
        EXPECT_THROW(std::rethrow_exception(err), serve::Cancelled);
    });
    EXPECT_TRUE(dead_done);
    EXPECT_EQ(sched.active(), 0);
    EXPECT_EQ(sched.stats().released, 1);
    EXPECT_EQ(sched.stats().admitted, 2);
    std::remove(path.c_str());
}

TEST(Scheduler, CancelTokenFreesTheSlotWithinOneStep)
{
    std::string path = savedCodecArtifact("edkm", "cancel");
    auto reader = serve::ArtifactReader::open(path);

    serve::InferenceEngine::Request keeper{{7, 8, 9}, 30};
    serve::InferenceEngine::Request after{{2, 2}, 10};
    std::vector<std::vector<int64_t>> want =
        serialReference(reader, {keeper, after});

    serve::InferenceEngine engine(reader);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 2; // `after` needs the cancelled request's slot
    serve::BatchScheduler sched(engine, cfg);

    std::vector<int64_t> got_keeper, got_after;
    auto keep = [&](serve::BatchScheduler::Response &&res,
                    std::exception_ptr err,
                    const serve::SchedulerRequestStats &) {
        ASSERT_EQ(err, nullptr);
        got_keeper = std::move(res.tokens);
    };
    sched.admit(keeper, keep);

    serve::InferenceEngine::Request doomed{{5, 6}, 300};
    doomed.cancel = std::make_shared<serve::CancelToken>();
    std::exception_ptr doomed_err;
    sched.admit(doomed, [&](serve::BatchScheduler::Response &&,
                            std::exception_ptr err,
                            const serve::SchedulerRequestStats &) {
        doomed_err = err;
    });
    ASSERT_FALSE(sched.hasCapacity());

    for (int i = 0; i < 4; ++i) {
        sched.step();
    }
    doomed.cancel->requestCancel();
    sched.step(); // eviction happens before this step's forward
    EXPECT_TRUE(sched.hasCapacity());
    ASSERT_NE(doomed_err, nullptr);
    try {
        std::rethrow_exception(doomed_err);
    } catch (const serve::Cancelled &e) {
        EXPECT_NE(std::string(e.what()).find("released after"),
                  std::string::npos);
    }

    // The freed slot admits new work, and neither the survivor nor the
    // newcomer deviates from solo serving by a bit.
    sched.admit(after, [&](serve::BatchScheduler::Response &&res,
                           std::exception_ptr err,
                           const serve::SchedulerRequestStats &) {
        ASSERT_EQ(err, nullptr);
        got_after = std::move(res.tokens);
    });
    while (sched.busy()) {
        sched.step();
    }
    EXPECT_EQ(got_keeper, want[0]);
    EXPECT_EQ(got_after, want[1]);
    EXPECT_EQ(sched.stats().released, 1);
    EXPECT_EQ(sched.stats().admitted,
              sched.stats().completed + sched.stats().failed +
                  sched.stats().deadlineEvicted + sched.stats().released);
    std::remove(path.c_str());
}

TEST(Scheduler, SwapEngineRetargetsThePrefixCacheAndCarriesCounters)
{
    std::string path_a = savedCodecArtifact("rtn", "swap_a");
    std::string path_b = savedCodecArtifact("edkm", "swap_b");
    auto reader_a = serve::ArtifactReader::open(path_a);
    auto reader_b = serve::ArtifactReader::open(path_b);

    std::vector<serve::InferenceEngine::Request> reqs;
    for (int i = 0; i < 6; ++i) {
        serve::InferenceEngine::Request r;
        r.prompt = {9, 9, 9, 9, static_cast<int64_t>(i)};
        r.maxNewTokens = 4;
        reqs.push_back(std::move(r));
    }
    std::vector<std::vector<int64_t>> want_a =
        serialReference(reader_a, reqs);
    std::vector<std::vector<int64_t>> want_b =
        serialReference(reader_b, reqs);

    serve::InferenceEngine engine_a(reader_a);
    serve::InferenceEngine engine_b(reader_b);
    serve::SchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.prefixCacheBytes = 1 << 20;
    serve::BatchScheduler sched(engine_a, cfg);

    std::vector<serve::BatchScheduler::Response> got =
        sched.run(reqs);
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].tokens, want_a[i]) << "gen 0 request " << i;
    }
    EXPECT_GT(sched.prefixStats().hits, 0);
    EXPECT_EQ(sched.prefixStats().generation, 0);

    // Swapping while a request is in flight is refused.
    bool pending_done = false;
    sched.admit({{1, 2, 3}, 4},
                [&](serve::BatchScheduler::Response &&,
                    std::exception_ptr,
                    const serve::SchedulerRequestStats &) {
                    pending_done = true;
                });
    EXPECT_THROW(sched.swapEngine(engine_b), FatalError);
    while (sched.busy()) {
        sched.step();
    }
    EXPECT_TRUE(pending_done);

    // Drained: the swap flushes the prefix cache (artifact-A rows must
    // never seed artifact-B decodes) and the same prompts now match
    // artifact B's serial reference bit for bit.
    sched.swapEngine(engine_b);
    EXPECT_EQ(sched.prefixStats().generation, 1);
    EXPECT_EQ(sched.prefixStats().entries, 0);
    EXPECT_GT(sched.prefixStats().generationFlushes, 0);
    int64_t admitted_before = sched.stats().admitted;
    EXPECT_GT(admitted_before, 0); // counters carry across the swap

    got = sched.run(reqs);
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].tokens, want_b[i]) << "gen 1 request " << i;
    }
    EXPECT_EQ(sched.stats().admitted,
              admitted_before + static_cast<int64_t>(reqs.size()));
    EXPECT_GT(sched.prefixStats().hits, 0); // cache rebanks under gen 1
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

} // namespace
} // namespace edkm
