/**
 * @file
 * Tests for the unified compression API (src/api/): registry lookup,
 * plan glob matching and text round trips, per-layer overrides and
 * skips, ModelArtifact save -> load -> reconstruct bit-exactness
 * against the in-memory compressed model, and cancellation rollback.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "api/artifact.h"
#include "api/compressor.h"
#include "api/plan.h"
#include "api/registry.h"
#include "api/session.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

nn::MiniLlama
tinyModel(uint64_t seed = 7)
{
    nn::LlamaConfig cfg;
    cfg.vocab = 64;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = seed;
    return nn::MiniLlama(cfg);
}

Tensor
tinyCalibTokens(int64_t vocab = 64)
{
    std::vector<int64_t> toks;
    Rng rng(3);
    for (int i = 0; i < 2 * 16; ++i) {
        toks.push_back(rng.randint(0, vocab - 1));
    }
    return Tensor::fromIndices(toks, {2, 16});
}

std::vector<std::pair<std::string, std::vector<float>>>
paramSnapshot(nn::MiniLlama &model)
{
    std::vector<std::pair<std::string, std::vector<float>>> snap;
    for (auto &[name, p] : model.namedParameters()) {
        snap.emplace_back(name, p.data().toVector());
    }
    return snap;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, KnowsAllBuiltinSchemes)
{
    auto &reg = api::CompressorRegistry::instance();
    for (const char *name : {"fp16", "rtn", "gptq", "awq", "smoothquant",
                             "qat", "edkm", "dkm"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    EXPECT_FALSE(reg.contains("zipml"));
}

TEST(Registry, CreateByNameReportsSchemeName)
{
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    auto c = api::CompressorRegistry::instance().create(plan);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), "edkm");
}

TEST(Registry, UnknownNameFailsActionably)
{
    api::CompressionPlan plan;
    try {
        api::CompressorRegistry::instance().create("no_such_scheme",
                                                   plan);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_scheme"), std::string::npos) << msg;
        // Actionable: the error lists the known schemes.
        EXPECT_NE(msg.find("edkm"), std::string::npos) << msg;
        EXPECT_NE(msg.find("rtn"), std::string::npos) << msg;
    }
}

TEST(Registry, ReRegisterReplacesFactory)
{
    class Stub : public api::Compressor
    {
      public:
        std::string name() const override { return "stub"; }
        api::CompressionReport
        compress(nn::MiniLlama &, const api::CalibData &,
                 const api::LayerSelection &) override
        {
            return {};
        }
    };
    auto &reg = api::CompressorRegistry::instance();
    reg.registerFactory("stub", [](const api::CompressionPlan &) {
        return std::make_unique<Stub>();
    });
    EXPECT_TRUE(reg.contains("stub"));
    api::CompressionPlan plan;
    EXPECT_EQ(reg.create("stub", plan)->name(), "stub");
}

// ---------------------------------------------------------------------
// Glob + plan resolution
// ---------------------------------------------------------------------

TEST(Glob, Matching)
{
    EXPECT_TRUE(api::globMatch("*", "blocks.0.attn.wq"));
    EXPECT_TRUE(api::globMatch("*.attn.wq", "blocks.0.attn.wq"));
    EXPECT_TRUE(api::globMatch("blocks.*.mlp.*", "blocks.1.mlp.w3"));
    EXPECT_TRUE(api::globMatch("lm_head", "lm_head"));
    EXPECT_TRUE(api::globMatch("blocks.?.attn.w?", "blocks.0.attn.wk"));
    EXPECT_FALSE(api::globMatch("*.attn.wq", "blocks.0.mlp.w1"));
    EXPECT_FALSE(api::globMatch("lm_head", "blocks.0.attn.wq"));
    EXPECT_FALSE(api::globMatch("blocks.?.attn.wq", "blocks.10.attn.wq"));
    EXPECT_TRUE(api::globMatch("**", "anything.at.all"));
    EXPECT_FALSE(api::globMatch("", "x"));
    EXPECT_TRUE(api::globMatch("", ""));
}

TEST(Plan, ResolveAppliesDefaultsOverridesAndSkips)
{
    api::CompressionPlan plan;
    plan.scheme = "rtn";
    plan.bits = 3;
    plan.groupSize = 16;
    plan.rules.push_back({"*.attn.*", false, 4, 0});
    plan.rules.push_back({"*.attn.wq", false, 2, 8});
    plan.rules.push_back({"lm_head", true, 0, 0});

    api::LayerSelection sel = plan.resolve(
        {"blocks.0.attn.wq", "blocks.0.attn.wk", "blocks.0.mlp.w1",
         "lm_head"});
    ASSERT_EQ(sel.layers.size(), 4u);

    // Later rules win: wq matched both attn rules, the second sticks.
    EXPECT_EQ(sel.specFor("blocks.0.attn.wq").bits, 2);
    EXPECT_EQ(sel.specFor("blocks.0.attn.wq").groupSize, 8);
    EXPECT_FALSE(sel.specFor("blocks.0.attn.wq").skip);

    // wk matched only the first attn rule; group size inherited.
    EXPECT_EQ(sel.specFor("blocks.0.attn.wk").bits, 4);
    EXPECT_EQ(sel.specFor("blocks.0.attn.wk").groupSize, 16);

    // Unmatched layer keeps plan defaults.
    EXPECT_EQ(sel.specFor("blocks.0.mlp.w1").bits, 3);

    EXPECT_TRUE(sel.specFor("lm_head").skip);
    EXPECT_EQ(sel.compressedCount(), 3u);
    EXPECT_THROW(sel.specFor("no.such.layer"), FatalError);
}

TEST(Plan, ValidateRejectsBadConfigs)
{
    api::CompressionPlan plan;
    plan.bits = 0;
    EXPECT_THROW(plan.validate(), FatalError);
    plan.bits = 17;
    EXPECT_THROW(plan.validate(), FatalError);
    plan.bits = 4;
    plan.rules.push_back({"", false, 4, 0});
    EXPECT_THROW(plan.validate(), FatalError); // empty pattern
    plan.rules[0] = {"*.wq", false, 0, 0};
    EXPECT_THROW(plan.validate(), FatalError); // overrides nothing
    plan.rules[0] = {"*.wq", false, 4, 0};
    EXPECT_NO_THROW(plan.validate());
}

TEST(Plan, TextRoundTrip)
{
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.groupSize = 32;
    plan.embeddingBits = 8;
    plan.dkmMaxIters = 6;
    plan.rules.push_back({"*.attn.wq", false, 4, 0});
    plan.rules.push_back({"lm_head", true, 0, 0});

    api::CompressionPlan back =
        api::CompressionPlan::fromText(plan.toText());
    EXPECT_EQ(back.scheme, "edkm");
    EXPECT_EQ(back.bits, 3);
    EXPECT_EQ(back.groupSize, 32);
    EXPECT_EQ(back.dkmMaxIters, 6);
    ASSERT_EQ(back.rules.size(), 2u);
    EXPECT_EQ(back.rules[0].pattern, "*.attn.wq");
    EXPECT_EQ(back.rules[0].bits, 4);
    EXPECT_TRUE(back.rules[1].skip);
}

TEST(Plan, FileRoundTrip)
{
    api::CompressionPlan plan;
    plan.scheme = "rtn";
    plan.rules.push_back({"lm_head", true, 0, 0});
    std::string path = "/tmp/edkm_test_plan.txt";
    plan.save(path);
    api::CompressionPlan back = api::CompressionPlan::load(path);
    std::remove(path.c_str());
    EXPECT_EQ(back.scheme, "rtn");
    ASSERT_EQ(back.rules.size(), 1u);
    EXPECT_TRUE(back.rules[0].skip);
}

TEST(Plan, ParseErrorsAreActionable)
{
    // Unknown key names the line and the accepted keys.
    try {
        api::CompressionPlan::fromText("scheme rtn\nbitz 4\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bitz"), std::string::npos) << msg;
        EXPECT_NE(msg.find("accepted"), std::string::npos) << msg;
    }
    // Non-numeric value.
    EXPECT_THROW(api::CompressionPlan::fromText("scheme rtn\nbits x\n"),
                 FatalError);
    // Missing scheme.
    EXPECT_THROW(api::CompressionPlan::fromText("bits 4\n"), FatalError);
    // Rule without directives.
    EXPECT_THROW(
        api::CompressionPlan::fromText("scheme rtn\nrule lm_head\n"),
        FatalError);
    // Comments and blank lines are fine.
    EXPECT_NO_THROW(api::CompressionPlan::fromText(
        "# comment\n\nscheme rtn\nrule lm_head skip\n"));
}

// ---------------------------------------------------------------------
// Artifact round trips
// ---------------------------------------------------------------------

/** Artifact reconstruct must be bit-identical for every scheme. */
class SchemeRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SchemeRoundTrip, ArtifactMatchesInMemoryModel)
{
    nn::MiniLlama model = tinyModel();
    api::CompressionPlan plan;
    plan.scheme = GetParam();
    plan.bits = std::string(GetParam()) == "smoothquant" ? 8 : 4;
    plan.groupSize = 16;
    plan.dkmMaxIters = 2;

    api::CalibData calib;
    calib.tokens = tinyCalibTokens();
    calib.trainConfig.steps = 0; // freeze-only for train-time schemes

    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));
    ASSERT_FALSE(res.cancelled);
    EXPECT_GT(res.report.size.payloadBytes, 0);

    nn::MiniLlama back = res.artifact.reconstruct();
    auto want = paramSnapshot(model);
    auto got = paramSnapshot(back);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].first, got[i].first);
        EXPECT_EQ(want[i].second, got[i].second)
            << GetParam() << ": " << want[i].first
            << " not bit-identical after save/load/reconstruct";
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeRoundTrip,
                         ::testing::Values("fp16", "rtn", "gptq", "awq",
                                           "smoothquant", "qat", "edkm",
                                           "dkm"));

TEST(Artifact, SerializedFileRoundTrip)
{
    nn::MiniLlama model = tinyModel();
    api::CompressionPlan plan;
    plan.scheme = "rtn";
    api::Session session;
    api::SessionResult res =
        session.run(model, plan, api::CalibData{});

    std::string path = "/tmp/edkm_test_artifact.edkm";
    res.artifact.save(path);
    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.scheme, "rtn");
    EXPECT_EQ(loaded.size.scheme, "RTN");
    EXPECT_EQ(loaded.entries.size(), res.artifact.entries.size());
    nn::MiniLlama back = loaded.reconstruct();
    EXPECT_EQ(paramSnapshot(back), paramSnapshot(model));
}

TEST(Artifact, DeserializeRejectsGarbage)
{
    EXPECT_THROW(api::ModelArtifact::deserialize(
                     std::vector<uint8_t>{}),
                 FatalError);
    EXPECT_THROW(api::ModelArtifact::deserialize(
                     std::vector<uint8_t>{1, 2, 3, 4}),
                 FatalError);
    std::vector<uint8_t> bad(64, 0xab);
    EXPECT_THROW(api::ModelArtifact::deserialize(bad), FatalError);
}

TEST(Artifact, TruncationDetected)
{
    nn::MiniLlama model = tinyModel();
    api::CompressionPlan plan;
    plan.scheme = "rtn";
    api::Session session;
    api::SessionResult res =
        session.run(model, plan, api::CalibData{});
    std::vector<uint8_t> bytes = res.artifact.serialize();
    // Any strict prefix must be rejected, never read out of bounds.
    for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
        std::vector<uint8_t> trunc(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<int64_t>(cut));
        EXPECT_THROW(api::ModelArtifact::deserialize(trunc), FatalError);
    }
    // Trailing garbage is rejected too.
    bytes.push_back(0);
    EXPECT_THROW(api::ModelArtifact::deserialize(bytes), FatalError);
}

// ---------------------------------------------------------------------
// End-to-end: scheme by name, overrides + skip, disk round trip
// ---------------------------------------------------------------------

TEST(EndToEnd, PlanWithOverridesCompressTrainSaveReloadBitExact)
{
    // Byte-tokenized stream: the model needs the full 256-token vocab.
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seed = 21;
    nn::MiniLlama model(cfg);

    data::SyntheticCorpus corpus(3);
    data::ByteTokenizer tok;
    std::vector<int64_t> stream =
        corpus.buildStream(corpus.generate(60, 5), tok);

    // Scheme by name with one per-layer override and one skipped layer.
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 2;
    plan.embeddingBits = 8;
    plan.rules.push_back({"*.mlp.w1", false, 4, 0}); // override: 4 bits
    plan.rules.push_back({"lm_head", true, 0, 0});   // skip

    api::CalibData calib;
    calib.trainStream = &stream;
    calib.trainConfig.steps = 4;
    calib.trainConfig.batch = 2;
    calib.trainConfig.seq = 16;

    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));
    ASSERT_FALSE(res.cancelled);

    // The skipped layer is reported as skipped (it still trained, but
    // no clustering transform or palettization was applied to it), and
    // no weight transforms survive the run.
    ASSERT_EQ(res.report.skippedLayers.size(), 1u);
    EXPECT_EQ(res.report.skippedLayers[0], "lm_head");
    for (auto &[path, linear] : model.allLinears()) {
        (void)path;
        EXPECT_FALSE(linear->hasWeightTransform());
    }

    // The override shows up in the artifact manifest.
    const api::ArtifactEntry &w1 =
        res.artifact.entry("blocks.0.mlp.w1.weight");
    EXPECT_EQ(w1.bits, 4);
    EXPECT_EQ(w1.codec, api::Codec::kPalettized);
    const api::ArtifactEntry &wq =
        res.artifact.entry("blocks.0.attn.wq.weight");
    EXPECT_EQ(wq.bits, 3);
    const api::ArtifactEntry &head = res.artifact.entry("lm_head.weight");
    EXPECT_EQ(head.codec, api::Codec::kRawF32);

    // Save, reload, reconstruct: bit-identical to the in-memory model.
    std::string path = "/tmp/edkm_test_e2e.edkm";
    res.artifact.save(path);
    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    std::remove(path.c_str());
    nn::MiniLlama back = loaded.reconstruct();
    auto want = paramSnapshot(model);
    auto got = paramSnapshot(back);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].second, got[i].second)
            << want[i].first << " differs after disk round trip";
    }
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(Cancellation, MidPlanRollsBackAndClearsTransforms)
{
    nn::MiniLlama model = tinyModel(33);
    auto before = paramSnapshot(model);

    // eDKM freeze-only: transforms get attached, then freezing is
    // cancelled after the second layer's tick.
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 2;

    api::CancelToken token;
    size_t freeze_ticks = 0;
    api::SessionConfig scfg;
    scfg.cancel = &token;
    scfg.onProgress = [&](const api::Progress &p) {
        if (p.stage == "freeze" && ++freeze_ticks == 2) {
            token.requestCancel();
        }
    };

    api::Session session(scfg);
    api::CalibData calib;
    calib.trainConfig.steps = 0;
    api::SessionResult res = session.run(model, plan, std::move(calib));

    EXPECT_TRUE(res.cancelled);
    EXPECT_TRUE(res.artifact.entries.empty());

    // Untransformed: no weight transforms remain...
    for (auto &[path, linear] : model.allLinears()) {
        (void)path;
        EXPECT_FALSE(linear->hasWeightTransform()) << path;
    }
    // ...and every parameter is bit-identical to the pre-run state
    // (the partially frozen layer was rolled back).
    auto after = paramSnapshot(model);
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].second, after[i].second)
            << before[i].first << " not rolled back";
    }
}

TEST(Cancellation, CalibrationCaptureFlagsAreCleared)
{
    // GPTQ enables input capture on every Linear before quantizing;
    // cancelling mid-walk must not leave layers stashing every future
    // forward's activations.
    nn::MiniLlama model = tinyModel(55);
    auto before = paramSnapshot(model);

    api::CompressionPlan plan;
    plan.scheme = "gptq";
    plan.bits = 4;
    plan.groupSize = 16;

    api::CancelToken token;
    size_t quantize_ticks = 0;
    api::SessionConfig scfg;
    scfg.cancel = &token;
    scfg.onProgress = [&](const api::Progress &p) {
        if (p.stage == "quantize" && ++quantize_ticks == 2) {
            token.requestCancel();
        }
    };
    api::Session session(scfg);
    api::CalibData calib;
    calib.tokens = tinyCalibTokens();
    api::SessionResult res = session.run(model, plan, std::move(calib));
    EXPECT_TRUE(res.cancelled);
    for (auto &[path, linear] : model.allLinears()) {
        EXPECT_FALSE(linear->capturesInputs()) << path;
    }
    auto after = paramSnapshot(model);
    for (size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].second, after[i].second)
            << before[i].first << " not rolled back";
    }
}

TEST(Cancellation, PtqSchemeRollsBackQuantizedLayers)
{
    nn::MiniLlama model = tinyModel(44);
    auto before = paramSnapshot(model);

    api::CompressionPlan plan;
    plan.scheme = "rtn";
    plan.bits = 3;

    api::CancelToken token;
    size_t ticks = 0;
    api::SessionConfig scfg;
    scfg.cancel = &token;
    scfg.onProgress = [&](const api::Progress &p) {
        (void)p;
        if (++ticks == 3) {
            token.requestCancel();
        }
    };
    api::Session session(scfg);
    api::SessionResult res = session.run(model, plan, api::CalibData{});
    EXPECT_TRUE(res.cancelled);
    auto after = paramSnapshot(model);
    for (size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].second, after[i].second)
            << before[i].first << " not rolled back";
    }
}

} // namespace
} // namespace edkm
