/**
 * @file
 * Quantisation baseline tests: RTN round trips, GPTQ's error
 * compensation beating RTN on layer outputs, AWQ's activation-aware
 * scaling beating plain RTN, SmoothQuant's product preservation, and
 * the QAT straight-through estimator.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "quant/affine.h"
#include "quant/awq.h"
#include "quant/gptq.h"
#include "quant/qat.h"
#include "quant/smoothquant.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace quant {
namespace {

/** ||W X^T - W' X^T||^2: the layer-output error metric. */
double
outputError(const Tensor &w, const Tensor &wq, const Tensor &x)
{
    Tensor a = matmul(x, w.transpose(0, 1));
    Tensor b = matmul(x, wq.transpose(0, 1));
    Tensor d = sub(a, b);
    return sumAll(mul(d, d)).item();
}

TEST(Affine, RoundTripBoundedError)
{
    Rng rng(1);
    Tensor w = Tensor::randn({16, 64}, rng);
    QuantizedMatrix q = quantizeAffine(w, 4, 32);
    Tensor dq = q.dequantize();
    // Max error bounded by half a step: range/(2*15) per group; just
    // assert a generous global bound.
    EXPECT_LT(maxAbsDiff(dq, w), 0.5f);
    // More bits -> strictly less error.
    Tensor dq8 = quantizeAffine(w, 8, 32).dequantize();
    EXPECT_LT(maxAbsDiff(dq8, w), maxAbsDiff(dq, w));
}

TEST(Affine, GroupSizeMetadataTradeoff)
{
    Rng rng(2);
    Tensor w = Tensor::randn({8, 128}, rng);
    QuantizedMatrix g32 = quantizeAffine(w, 4, 32);
    QuantizedMatrix g128 = quantizeAffine(w, 4, 128);
    // Smaller groups: more metadata, lower error.
    EXPECT_GT(g32.payloadBytes(), g128.payloadBytes());
    Tensor d32 = g32.dequantize(), d128 = g128.dequantize();
    Tensor e32 = sub(d32, w), e128 = sub(d128, w);
    EXPECT_LE(sumAll(mul(e32, e32)).item(),
              sumAll(mul(e128, e128)).item());
    // g128 at 4 bits is ~4.25 bits/weight (the paper's 3.7 GB row).
    EXPECT_NEAR(g128.bitsPerWeight(), 4.0 + 32.0 / 128.0, 0.1);
}

TEST(Affine, PerChannelWhenGroupLargerThanRow)
{
    Rng rng(3);
    Tensor w = Tensor::randn({4, 16}, rng);
    QuantizedMatrix q = quantizeAffine(w, 4, 999);
    EXPECT_EQ(q.groupSize, 16);
    EXPECT_EQ(q.scales.size(), 4u);
}

TEST(Affine, ConstantBlockHandled)
{
    Tensor w = Tensor::full({2, 8}, 3.0f);
    Tensor dq = rtnQuantize(w, 3, 8);
    EXPECT_TRUE(allclose(dq, w, 1e-3f, 1e-3f));
}

TEST(Gptq, BeatsRtnOnLayerOutput)
{
    // Correlated activations: exactly the case where second-order
    // compensation helps.
    Rng rng(4);
    int64_t in = 32, out = 16, n = 64;
    Tensor base = Tensor::randn({n, 8}, rng);
    Tensor mix = Tensor::randn({8, in}, rng);
    Tensor x = matmul(base, mix); // rank-8 correlated inputs
    Tensor w = Tensor::randn({out, in}, rng);

    GptqConfig cfg;
    cfg.bits = 3;
    cfg.groupSize = 16;
    Tensor gptq_w = gptqQuantize(w, x, cfg);
    Tensor rtn_w = rtnQuantize(w, 3, 16);

    double gptq_err = outputError(w, gptq_w, x);
    double rtn_err = outputError(w, rtn_w, x);
    EXPECT_LT(gptq_err, rtn_err);
}

TEST(Gptq, StorageFormatFilled)
{
    Rng rng(5);
    Tensor w = Tensor::randn({8, 16}, rng);
    Tensor x = Tensor::randn({32, 16}, rng);
    GptqConfig cfg;
    cfg.bits = 4;
    cfg.groupSize = 8;
    QuantizedMatrix q;
    Tensor dq = gptqQuantize(w, x, cfg, &q);
    EXPECT_EQ(q.bits, 4);
    EXPECT_EQ(q.scales.size(), 8u * 2);
    // The dequantised result decodes from the storage format exactly.
    EXPECT_LT(maxAbsDiff(q.dequantize(), dq), 1e-5f);
}

TEST(Affine, SerializeDeserializeRoundTripIsBitExact)
{
    Rng rng(9);
    Tensor w = Tensor::randn({8, 24}, rng, Device::cpu(), 0.5f);
    QuantizedMatrix q = quantizeAffine(w, 3, 8);
    QuantizedMatrix back = QuantizedMatrix::deserialize(q.serialize());
    EXPECT_EQ(back.bits, q.bits);
    EXPECT_EQ(back.groupSize, q.groupSize);
    EXPECT_EQ(back.shape, q.shape);
    EXPECT_EQ(back.packed, q.packed);
    // Scales/zeros are FP16 at creation, so the round trip is lossless
    // and dequantisation is bit-identical.
    EXPECT_EQ(back.scales, q.scales);
    EXPECT_EQ(back.zeros, q.zeros);
    EXPECT_EQ(back.dequantize().toVector(), q.dequantize().toVector());
}

TEST(Affine, DeserializeRejectsCorruption)
{
    Rng rng(10);
    QuantizedMatrix q = quantizeAffine(Tensor::randn({4, 8}, rng), 4, 4);
    std::vector<uint8_t> intact = q.serialize();
    std::vector<uint8_t> bad = intact;
    bad[0] ^= 0xff; // magic
    EXPECT_THROW(QuantizedMatrix::deserialize(bad), FatalError);
    for (size_t cut = 0; cut < intact.size(); cut += 3) {
        std::vector<uint8_t> t(intact.begin(),
                               intact.begin() +
                                   static_cast<int64_t>(cut));
        EXPECT_THROW(QuantizedMatrix::deserialize(t), FatalError);
    }
    std::vector<uint8_t> trailing = intact;
    trailing.push_back(0);
    EXPECT_THROW(QuantizedMatrix::deserialize(trailing), FatalError);
}

TEST(Awq, BeatsRtnWithOutlierChannels)
{
    // A few high-magnitude activation channels: AWQ's motivating case.
    Rng rng(6);
    int64_t in = 32, out = 8, n = 48;
    Tensor x = Tensor::randn({n, in}, rng);
    // Scale up 4 channels by 30x.
    for (int64_t s = 0; s < n; ++s) {
        for (int64_t c = 0; c < 4; ++c) {
            x.setAt({s, c}, x.at({s, c}) * 30.0f);
        }
    }
    Tensor w = Tensor::randn({out, in}, rng);
    AwqConfig cfg;
    cfg.bits = 3;
    cfg.groupSize = 32;
    AwqResult result;
    Tensor awq_w = awqQuantize(w, x, cfg, &result);
    EXPECT_GT(result.bestAlpha, 0.0f); // scaling was worth it
    EXPECT_LE(result.bestError, result.rtnError);
    double awq_err = outputError(w, awq_w, x);
    double rtn_err = outputError(w, rtnQuantize(w, 3, 32), x);
    EXPECT_LT(awq_err, rtn_err);
}

TEST(SmoothQuant, ProductApproximatelyPreserved)
{
    Rng rng(7);
    Tensor w = Tensor::randn({8, 16}, rng);
    Tensor x = Tensor::randn({24, 16}, rng);
    SmoothQuantConfig cfg;
    SmoothedLayer s = smoothQuantize(w, x, cfg);
    EXPECT_EQ(s.scales.size(), 16u);
    // 8-bit weight quantisation after smoothing: small output error.
    double err = outputError(w, s.weight, x);
    double ref = sumAll(square(matmul(x, w.transpose(0, 1)))).item();
    EXPECT_LT(err, 0.01 * ref);
}

TEST(SmoothQuant, ActivationQuantiser)
{
    Rng rng(8);
    Tensor x = Tensor::randn({4, 4}, rng);
    Tensor q = quantizeActivations(x, 8);
    EXPECT_LT(maxAbsDiff(q, x), 0.1f);
    // Degenerate all-zero input survives.
    Tensor z = Tensor::zeros({2, 2});
    EXPECT_EQ(maxAbsDiff(quantizeActivations(z, 8), z), 0.0f);
}

TEST(Qat, SteGradientIsIdentity)
{
    Rng rng(9);
    Tensor w0 = Tensor::randn({4, 8}, rng);
    Variable w(w0, true);
    Variable wq = fakeQuantize(w, 4, -1);
    // Forward is quantised...
    EXPECT_GT(maxAbsDiff(wq.data(), w0), 0.0f);
    // ...but the gradient passes straight through.
    backward(af::sumAll(wq));
    for (int64_t i = 0; i < w0.numel(); ++i) {
        EXPECT_EQ(w.grad().flatAt(i), 1.0f);
    }
}

TEST(Qat, TrainingMovesWeightsTowardGrid)
{
    // Minimise ||fq(w) - target||^2 where target is on the grid:
    // STE lets w converge despite the non-differentiable rounding.
    Rng rng(10);
    Tensor w0 = Tensor::randn({1, 8}, rng);
    Variable w(w0.clone(), true);
    Tensor target = fakeQuantizeData(Tensor::randn({1, 8}, rng), 3, -1);
    for (int step = 0; step < 300; ++step) {
        Variable loss = af::sumAll(af::square(
            af::sub(fakeQuantize(w, 3, -1), af::constant(target))));
        w.zeroGrad();
        backward(loss);
        // Plain SGD.
        for (int64_t i = 0; i < 8; ++i) {
            w.mutableData().setFlatAt(
                i, w.data().flatAt(i) - 0.01f * w.grad().flatAt(i));
        }
    }
    Variable final_loss = af::sumAll(af::square(
        af::sub(fakeQuantize(w, 3, -1), af::constant(target))));
    EXPECT_LT(final_loss.data().item(), 0.05f);
}

TEST(Qat, QatLinearForward)
{
    Rng rng(11);
    auto inner = std::make_shared<nn::Linear>(4, 4, rng);
    QatLinear qat(inner, 4);
    Variable x(Tensor::randn({2, 4}, rng), false);
    Variable y = qat.forward(x);
    EXPECT_EQ(y.data().shape(), (Shape{2, 4}));
    backward(af::sumAll(af::square(y)));
    EXPECT_TRUE(inner->weight().grad().defined());
}

} // namespace
} // namespace quant
} // namespace edkm
