/**
 * @file
 * Cross-module integration tests: the full eDKM fine-tuning pipeline
 * (model + clustering + marshaling + optimizer), compression-scheme
 * end-to-end application, and the Table 2 memory-ordering claim at
 * integration scale.
 */

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "data/synthetic.h"
#include "device/device_manager.h"
#include "eval/compress.h"
#include "eval/mc_harness.h"
#include "eval/train.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace edkm {
namespace {

nn::LlamaConfig
tinyConfig()
{
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    return cfg;
}

TEST(Integration, EdkmFineTuningStepEndToEnd)
{
    // One full fine-tuning step with eDKM attached to every linear and
    // marshaling installed: loss computes, gradients reach the raw
    // weights, and the saved payload went through the hooks.
    DeviceManager::instance().resetAll();
    nn::MiniLlama model(tinyConfig());
    EdkmConfig ecfg;
    ecfg.dkm.bits = 3;
    ecfg.dkm.maxIters = 2;
    auto layers = eval::attachEdkm(model, ecfg);
    EXPECT_EQ(layers.size(), 8u);

    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(50, 11), tok);
    Rng rng(3);
    data::LmBatch batch =
        data::SyntheticCorpus::sampleBatch(stream, 2, 24, rng);

    nn::AdamW opt(model.parameters());
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable logits = model.forward(batch.tokens);
        loss = af::crossEntropy(logits, batch.targets);
    }
    backward(loss);
    EXPECT_GT(ctx.stats().packs, 0);

    // Every linear weight received a gradient through the clustering.
    for (auto &[name, linear] : model.allLinears()) {
        EXPECT_TRUE(linear->weight().grad().defined()) << name;
    }
    nn::AdamW::clipGradNorm(model.parameters(), 1.0f);
    opt.step();
    eval::clearTransforms(model);
}

TEST(Integration, FineTuneWithEdkmThenFreeze)
{
    // Short eDKM fine-tune, freeze to palettized, and verify the loss
    // under frozen 3-bit weights stays close to the clustered-training
    // loss (the reason train-time clustering beats post-training).
    nn::LlamaConfig cfg = tinyConfig();
    nn::MiniLlama model(cfg);
    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(300, 11), tok);

    // Pretrain uncompressed a bit.
    eval::TrainConfig pre;
    pre.steps = 30;
    pre.batch = 4;
    pre.seq = 32;
    pre.optimizer.lr = 3e-3f;
    eval::trainLm(model, stream, pre);
    float fp_loss = eval::evalLoss(model, stream, 2, 32, 4);

    // Attach eDKM and fine-tune.
    EdkmConfig ecfg;
    ecfg.dkm.bits = 3;
    ecfg.dkm.maxIters = 3;
    auto layers = eval::attachEdkm(model, ecfg);
    eval::TrainConfig ft;
    ft.steps = 25;
    ft.batch = 4;
    ft.seq = 32;
    ft.optimizer.lr = 1e-3f;
    eval::trainLm(model, stream, ft);

    // Freeze into the deployable format.
    eval::SizeReport size = eval::freezeEdkm(model, layers, 8);
    float frozen_loss = eval::evalLoss(model, stream, 2, 32, 4);

    EXPECT_LT(size.bitsPerWeight, 16.0);
    // Frozen model is functional: loss within a reasonable band of the
    // FP model (not collapsed to uniform).
    EXPECT_LT(frozen_loss, fp_loss + 1.5f);
}

TEST(Integration, PostTrainingSchemesPreserveFunction)
{
    nn::LlamaConfig cfg = tinyConfig();
    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(300, 11), tok);
    eval::TrainConfig pre;
    pre.steps = 40;
    pre.batch = 4;
    pre.seq = 32;
    pre.optimizer.lr = 3e-3f;

    nn::MiniLlama reference(cfg);
    eval::trainLm(reference, stream, pre);
    float ref_loss = eval::evalLoss(reference, stream, 2, 32, 4);

    Rng rng(9);
    data::LmBatch calib =
        data::SyntheticCorpus::sampleBatch(stream, 2, 24, rng);

    // Each scheme applied to an identically trained copy.
    auto check = [&](const char *name, auto apply) {
        nn::MiniLlama m(cfg);
        eval::trainLm(m, stream, pre);
        eval::SizeReport r = apply(m);
        float loss = eval::evalLoss(m, stream, 2, 32, 4);
        EXPECT_LT(loss, ref_loss + 2.0f) << name;
        EXPECT_LT(r.payloadBytes, eval::fp16Size(m).payloadBytes)
            << name;
    };
    check("rtn", [&](nn::MiniLlama &m) {
        return eval::applyRtn(m, 4, 16);
    });
    check("gptq", [&](nn::MiniLlama &m) {
        quant::GptqConfig qc;
        qc.bits = 4;
        qc.groupSize = 16;
        return eval::applyGptq(m, calib.tokens, qc);
    });
    check("awq", [&](nn::MiniLlama &m) {
        quant::AwqConfig ac;
        ac.bits = 4;
        ac.groupSize = 16;
        ac.gridPoints = 5;
        return eval::applyAwq(m, calib.tokens, ac);
    });
    check("smoothquant", [&](nn::MiniLlama &m) {
        quant::SmoothQuantConfig sc;
        return eval::applySmoothQuant(m, calib.tokens, sc);
    });
}

TEST(Integration, Table2MemoryOrderingAtSmallScale)
{
    // One weight matrix, fwd+bwd of one DKM step under each Table 2
    // configuration; CPU-resident saved bytes must reproduce the
    // paper's ordering. Uniquification's advantage grows with |W| (the
    // unique count saturates while |W| does not), so this runs at the
    // largest size CI comfortably allows; the Table 2 bench runs the
    // full-scale version.
    DeviceManager::instance().resetAll();
    int64_t side = 192;
    int64_t n = side * side;
    Rng rng(21);
    Tensor w_cpu =
        Tensor::randn({side, side}, rng, Device::cpu(), 0.02f)
            .to(DType::kBf16)
            .to(DType::kF32);
    Tensor w_gpu = w_cpu.to(Device::gpu(0));

    DkmConfig dkm;
    dkm.bits = 3;
    dkm.maxIters = 3;
    dkm.convergenceEps = 0.0f;

    auto measure_composed = [&](MarshalConfig::Detection det) {
        DeviceManager::instance().resetStats();
        MarshalConfig mc;
        mc.detection = det;
        mc.minOffloadBytes = 1;
        MarshalContext ctx(mc);
        DkmLayer layer(dkm);
        Variable wv(w_gpu.clone(), true);
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(layer.forward(wv)));
        }
        int64_t resident = ctx.residentBytes();
        backward(loss);
        return resident;
    };

    auto measure_fused = [&](bool uniq, bool shard) {
        DeviceManager::instance().resetStats();
        MarshalConfig mc;
        mc.minOffloadBytes = 1;
        MarshalContext ctx(mc);
        auto group = std::make_shared<LearnerGroup>(8);
        EdkmConfig ecfg;
        ecfg.dkm = dkm;
        ecfg.uniquify = uniq;
        ecfg.shard = shard;
        EdkmLayer layer(ecfg, group);
        Variable wv(w_gpu.clone(), true);
        Variable loss;
        {
            SavedTensorHooksGuard guard(&ctx);
            loss = af::sumAll(af::square(layer.forward(wv)));
        }
        int64_t resident = ctx.residentBytes();
        backward(loss);
        return resident;
    };

    int64_t base = measure_composed(MarshalConfig::Detection::kNone);
    int64_t m = measure_composed(MarshalConfig::Detection::kGraphWalk);
    int64_t ms = measure_fused(false, true);
    int64_t mu = measure_fused(true, false);
    int64_t mus = measure_fused(true, true);

    EXPECT_GT(base, m);   // marshaling dedups the duplicate saves
    EXPECT_GT(m, ms);     // sharding the dense maps saves further
    EXPECT_GT(m, mu);     // uniquification saves further
    EXPECT_GT(ms, mus);   // U on top of S
    EXPECT_GT(mu, mus);   // S on top of U
    // Combined reduction is already large at this scale and grows with
    // |W| (at the paper's 67M-weight layer it reaches ~130x).
    EXPECT_GT(static_cast<double>(base) / mus, 10.0);
    (void)n;
}

TEST(Integration, AccuracyEvalRunsOnCompressedModel)
{
    nn::MiniLlama model(tinyConfig());
    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto suite = eval::buildSyntheticSuite(corpus, 3, 41);
    eval::applyRtn(model, 4, 16);
    eval::SuiteResult r = eval::evaluateSuite(model, tok, suite);
    EXPECT_EQ(r.taskAccuracy.size(), 7u);
    for (auto &[name, acc] : r.taskAccuracy) {
        EXPECT_GE(acc, 0.0) << name;
        EXPECT_LE(acc, 1.0) << name;
    }
}

} // namespace
} // namespace edkm
