/**
 * @file
 * Tests for the edkm::runtime subsystem: pool lifecycle, exception
 * propagation, nested-call safety, SerialGuard, EDKM_NUM_THREADS
 * resolution, and — the safety rail of the whole hot-path refactor —
 * bit-identical kmeans/dkm/edkm results between serial and 8-thread
 * execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "core/kmeans.h"
#include "device/device_manager.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

/** Restore the global pool to the ambient default on scope exit. */
class ThreadCountScope
{
  public:
    explicit ThreadCountScope(int threads)
    {
        runtime::Runtime::instance().setThreadCount(threads);
    }
    ~ThreadCountScope()
    {
        runtime::Runtime::instance().setThreadCount(
            runtime::Runtime::defaultThreadCount());
    }
};

TEST(ThreadPool, StartupShutdownAndBasicCoverage)
{
    for (int threads : {1, 2, 8}) {
        runtime::ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::vector<int> hits(1000, 0);
        pool.forChunks(0, 1000, 7,
                       [&](int64_t, int64_t b, int64_t e) {
                           for (int64_t i = b; i < e; ++i) {
                               ++hits[static_cast<size_t>(i)];
                           }
                       });
        for (int h : hits) {
            EXPECT_EQ(h, 1); // every index covered exactly once
        }
    }
}

TEST(ThreadPool, ChunkDecompositionIsThreadCountIndependent)
{
    auto chunks_of = [](runtime::ThreadPool &pool) {
        std::vector<std::pair<int64_t, int64_t>> spans(12);
        pool.forChunks(3, 100, 9,
                       [&](int64_t ci, int64_t b, int64_t e) {
                           spans[static_cast<size_t>(ci)] = {b, e};
                       });
        return spans;
    };
    runtime::ThreadPool serial(1), wide(8);
    EXPECT_EQ(chunks_of(serial), chunks_of(wide));
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    runtime::ThreadPool pool(4);
    EXPECT_THROW(
        pool.forChunks(0, 1000, 10,
                       [&](int64_t, int64_t b, int64_t) {
                           if (b >= 500) {
                               fatal("boom at ", b);
                           }
                       }),
        FatalError);
    // Pool still functional after the failed loop.
    std::atomic<int64_t> sum{0};
    pool.forChunks(0, 100, 10, [&](int64_t, int64_t b, int64_t e) {
        sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock)
{
    runtime::ThreadPool pool(4);
    std::vector<int> hits(64 * 64, 0);
    pool.forChunks(0, 64, 4, [&](int64_t, int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o) {
            // Nested loop from a worker: must run inline, not re-enter
            // the queue (which could deadlock a saturated pool).
            pool.forChunks(0, 64, 8,
                           [&](int64_t, int64_t ib, int64_t ie) {
                               for (int64_t i = ib; i < ie; ++i) {
                                   ++hits[static_cast<size_t>(
                                       o * 64 + i)];
                               }
                           });
        }
    });
    for (int h : hits) {
        ASSERT_EQ(h, 1);
    }
}

TEST(ThreadPool, SubmitRunsJobAndCarriesExceptions)
{
    runtime::ThreadPool pool(2);
    std::atomic<bool> ran{false};
    pool.submit([&] { ran.store(true); }).get();
    EXPECT_TRUE(ran.load());
    auto failing = pool.submit([] { fatal("job failed"); });
    EXPECT_THROW(failing.get(), FatalError);
}

TEST(Runtime, EnvVariableControlsDefaultThreadCount)
{
    ASSERT_EQ(setenv("EDKM_NUM_THREADS", "3", 1), 0);
    EXPECT_EQ(runtime::Runtime::defaultThreadCount(), 3);
    ASSERT_EQ(setenv("EDKM_NUM_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(runtime::Runtime::defaultThreadCount(), 1);
    ASSERT_EQ(setenv("EDKM_NUM_THREADS", "1", 1), 0);
    EXPECT_EQ(runtime::Runtime::defaultThreadCount(), 1);
    unsetenv("EDKM_NUM_THREADS");
    EXPECT_GE(runtime::Runtime::defaultThreadCount(), 1);
}

TEST(Runtime, SetThreadCountSwapsPool)
{
    ThreadCountScope scope(5);
    EXPECT_EQ(runtime::Runtime::instance().threadCount(), 5);
    runtime::Runtime::instance().setThreadCount(2);
    EXPECT_EQ(runtime::Runtime::instance().threadCount(), 2);
}

TEST(Runtime, SerialGuardKeepsWorkOnCallingThread)
{
    ThreadCountScope scope(8);
    std::thread::id caller = std::this_thread::get_id();
    runtime::SerialGuard guard;
    EXPECT_TRUE(runtime::SerialGuard::active());
    runtime::parallelFor(0, 10000, 10, [&](int64_t, int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(Runtime, ParallelReduceMatchesSerialBitExactly)
{
    // Float accumulation is order-sensitive: identical results across
    // thread counts prove the combine order really is fixed.
    Rng rng(21);
    std::vector<float> xs(100000);
    for (float &x : xs) {
        x = rng.uniform(-1.0f, 1.0f);
    }
    auto reduce = [&] {
        return runtime::parallelReduce<float>(
            0, static_cast<int64_t>(xs.size()), 1009, 0.0f,
            [&](int64_t b, int64_t e) {
                float s = 0.0f;
                for (int64_t i = b; i < e; ++i) {
                    s += xs[static_cast<size_t>(i)];
                }
                return s;
            },
            [](float a, float b) { return a + b; });
    };
    float serial_sum;
    {
        runtime::SerialGuard guard;
        serial_sum = reduce();
    }
    ThreadCountScope scope(8);
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(reduce(), serial_sum);
    }
}

// ---------------------------------------------------------------------
// Serial-vs-parallel determinism of the clustering stack.
// ---------------------------------------------------------------------

class RuntimeDeterminism : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
        Rng rng(31);
        w = Tensor::randn({4096}, rng, Device::cpu(), 0.02f)
                .to(DType::kBf16)
                .to(DType::kF32);
        Rng up(32);
        upstream = Tensor::randn({4096}, up);
    }

    static void
    expectBitIdentical(const Tensor &a, const Tensor &b)
    {
        ASSERT_EQ(a.shape(), b.shape());
        std::vector<float> va = a.toVector(), vb = b.toVector();
        for (size_t i = 0; i < va.size(); ++i) {
            ASSERT_EQ(va[i], vb[i]) << "element " << i << " differs";
        }
    }

    Tensor w;
    Tensor upstream;
};

TEST_F(RuntimeDeterminism, KmeansIdenticalSerialVs8Threads)
{
    std::vector<float> values = w.toVector();
    KMeansResult serial_r, parallel_r;
    {
        runtime::SerialGuard guard;
        Rng rng(7);
        serial_r = kmeans1d(values, {}, 16, rng, 10);
    }
    {
        ThreadCountScope scope(8);
        Rng rng(7);
        parallel_r = kmeans1d(values, {}, 16, rng, 10);
    }
    EXPECT_EQ(serial_r.centroids, parallel_r.centroids);
    EXPECT_EQ(serial_r.assignments, parallel_r.assignments);
    EXPECT_EQ(serial_r.inertia, parallel_r.inertia);
    EXPECT_EQ(serial_r.iterations, parallel_r.iterations);
}

TEST_F(RuntimeDeterminism, DkmIdenticalSerialVs8Threads)
{
    DkmConfig cfg;
    cfg.bits = 3;
    cfg.maxIters = 4;
    cfg.temperature = 2e-4f;
    auto run_once = [&] {
        DkmLayer layer(cfg);
        Variable wv(w.clone(), true);
        Variable out = layer.forward(wv);
        Variable loss =
            af::sumAll(af::mul(out, af::constant(upstream)));
        backward(loss);
        return std::make_pair(out.data(), wv.grad());
    };
    Tensor serial_out, serial_grad;
    {
        runtime::SerialGuard guard;
        std::tie(serial_out, serial_grad) = run_once();
    }
    ThreadCountScope scope(8);
    auto [par_out, par_grad] = run_once();
    expectBitIdentical(serial_out, par_out);
    expectBitIdentical(serial_grad, par_grad);
}

TEST_F(RuntimeDeterminism, EdkmIdenticalSerialVs8ThreadsAllModes)
{
    for (bool uniq : {true, false}) {
        for (auto mode : {EdkmConfig::BackwardMode::kReconstruct,
                          EdkmConfig::BackwardMode::kFused}) {
            EdkmConfig cfg;
            cfg.dkm.bits = 3;
            cfg.dkm.maxIters = 3;
            cfg.dkm.temperature = 2e-4f;
            cfg.uniquify = uniq;
            cfg.backwardMode = mode;
            auto run_once = [&] {
                EdkmLayer layer(cfg);
                Variable wv(w.clone(), true);
                Variable out = layer.forward(wv);
                Variable loss =
                    af::sumAll(af::mul(out, af::constant(upstream)));
                backward(loss);
                return std::make_pair(out.data(), wv.grad());
            };
            Tensor serial_out, serial_grad;
            {
                runtime::SerialGuard guard;
                std::tie(serial_out, serial_grad) = run_once();
            }
            ThreadCountScope scope(8);
            auto [par_out, par_grad] = run_once();
            expectBitIdentical(serial_out, par_out);
            expectBitIdentical(serial_grad, par_grad);
        }
    }
}

TEST_F(RuntimeDeterminism, UniquifyIdenticalSerialVs8Threads)
{
    UniqueDecomposition serial_dec, parallel_dec;
    {
        runtime::SerialGuard guard;
        serial_dec = uniquify(w, HalfKind::kBf16);
    }
    {
        ThreadCountScope scope(8);
        parallel_dec = uniquify(w, HalfKind::kBf16);
    }
    EXPECT_EQ(serial_dec.values, parallel_dec.values);
    EXPECT_EQ(serial_dec.counts, parallel_dec.counts);
    EXPECT_EQ(serial_dec.indexList.toIntVector(),
              parallel_dec.indexList.toIntVector());
}

} // namespace
} // namespace edkm
