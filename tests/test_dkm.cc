/**
 * @file
 * Tests for the dense differentiable k-means layer (DKM): forward
 * quality, gradient correctness against finite differences, convergence,
 * and interaction with the saved-tensor machinery.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/kmeans.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

Tensor
clusterableWeights(int64_t n, Rng &rng, float spread = 1.0f)
{
    // Mixture of 8 well-separated modes: clusterable at 3 bits.
    Tensor w = Tensor::empty({n});
    for (int64_t i = 0; i < n; ++i) {
        float center = static_cast<float>(rng.randint(0, 7)) * spread -
                       3.5f * spread;
        w.setFlatAt(i, center + rng.normal(0.0f, 0.03f * spread));
    }
    return w;
}

TEST(Dkm, SoftClusteringApproximatesInput)
{
    Rng rng(31);
    Tensor w = clusterableWeights(512, rng);
    DkmConfig cfg;
    cfg.bits = 3;
    DkmLayer layer(cfg);
    Variable out = layer.forward(Variable(w, true));
    EXPECT_EQ(out.data().shape(), w.shape());
    // Soft-clustered weights stay close to the original on clusterable
    // data.
    EXPECT_LT(maxAbsDiff(out.data(), w), 0.15f);
    EXPECT_GE(layer.lastIterations(), 1);
    EXPECT_EQ(layer.centroids().numel(), 8);
}

TEST(Dkm, BeatsUniformQuantOnClusteredData)
{
    // Clustered (non-uniform) weights: k-means palettization must beat
    // a uniform grid of the same bit width (the reason weight
    // clustering wins in Table 3).
    Rng rng(33);
    Tensor w = clusterableWeights(2048, rng);
    // Perturb mode positions to be non-uniform.
    DkmConfig cfg;
    cfg.bits = 3;
    DkmLayer layer(cfg);
    layer.forward(Variable(w, false));
    Tensor dkm_rec = layer.palettize(w).decompress();
    Tensor d1 = sub(dkm_rec, w);
    double dkm_mse = sumAll(mul(d1, d1)).item();

    // Uniform 3-bit grid over [min, max].
    std::vector<float> v = w.toVector();
    float lo = *std::min_element(v.begin(), v.end());
    float hi = *std::max_element(v.begin(), v.end());
    double uni_mse = 0;
    for (float x : v) {
        float q = std::round((x - lo) / (hi - lo) * 7.0f);
        float rec = lo + q * (hi - lo) / 7.0f;
        uni_mse += static_cast<double>(x - rec) * (x - rec);
    }
    EXPECT_LT(dkm_mse, uni_mse);
}

TEST(Dkm, GradientMatchesFiniteDifference)
{
    Rng rng(35);
    int64_t n = 24;
    Tensor w0 = clusterableWeights(n, rng);
    Tensor target = clusterableWeights(n, rng);
    DkmConfig cfg;
    cfg.bits = 2;
    cfg.maxIters = 3;
    cfg.convergenceEps = 0.0f; // fixed iteration count for FD stability
    cfg.temperature = 0.05f;

    auto loss_fn = [&](const Tensor &wt, bool grad) {
        DkmLayer layer(cfg);
        Variable w(wt.clone(), grad);
        Variable out = layer.forward(w);
        Variable diff = af::sub(out, af::constant(target));
        Variable loss = af::sumAll(af::square(diff));
        return std::make_pair(loss, w);
    };

    auto [loss, w] = loss_fn(w0, true);
    backward(loss);
    ASSERT_TRUE(w.grad().defined());

    float h = 1e-3f;
    for (int64_t i = 0; i < n; i += 5) {
        Tensor wp = w0.clone();
        wp.setFlatAt(i, w0.flatAt(i) + h);
        Tensor wm = w0.clone();
        wm.setFlatAt(i, w0.flatAt(i) - h);
        NoGradGuard ng;
        float lp = loss_fn(wp, false).first.data().item();
        float lm = loss_fn(wm, false).first.data().item();
        float fd = (lp - lm) / (2.0f * h);
        float ag = w.grad().flatAt(i);
        EXPECT_NEAR(ag, fd, 0.05f * std::max(1.0f, std::fabs(fd)))
            << "element " << i;
    }
}

TEST(Dkm, ConvergesBeforeMaxIters)
{
    Rng rng(37);
    Tensor w = clusterableWeights(256, rng);
    DkmConfig cfg;
    cfg.bits = 3;
    cfg.maxIters = 50;
    cfg.convergenceEps = 1e-5f;
    DkmLayer layer(cfg);
    layer.forward(Variable(w, false));
    EXPECT_LT(layer.lastIterations(), 50);
}

TEST(Dkm, AutoTemperaturePositive)
{
    Rng rng(39);
    Tensor w = Tensor::randn({128}, rng, Device::cpu(), 0.02f);
    DkmConfig cfg;
    cfg.bits = 3;
    cfg.temperature = 0.0f; // auto
    DkmLayer layer(cfg);
    layer.forward(Variable(w, false));
    EXPECT_GT(layer.temperatureUsed(), 0.0f);
    EXPECT_LT(layer.temperatureUsed(), 1.0f);
}

TEST(Dkm, PalettizeUsesLayerCentroids)
{
    Rng rng(41);
    Tensor w = clusterableWeights(128, rng);
    DkmConfig cfg;
    cfg.bits = 3;
    DkmLayer layer(cfg);
    layer.forward(Variable(w, false));
    PalettizedTensor p = layer.palettize(w);
    EXPECT_EQ(p.bits(), 3);
    EXPECT_EQ(p.numel(), 128);
    // Every reconstructed value equals one of the centroids (fp16 LUT).
    std::vector<float> lut = p.lut();
    Tensor rec = p.decompress();
    for (int64_t i = 0; i < 128; ++i) {
        bool found = false;
        for (float c : lut) {
            found |= rec.flatAt(i) == c;
        }
        EXPECT_TRUE(found);
    }
    EXPECT_THROW(DkmLayer(cfg).palettize(w), FatalError); // no forward
}

TEST(Dkm, PreservesInputShape)
{
    Rng rng(43);
    Tensor w = Tensor::randn({6, 5, 4}, rng);
    DkmConfig cfg;
    cfg.bits = 2;
    cfg.maxIters = 2;
    DkmLayer layer(cfg);
    Variable out = layer.forward(Variable(w, true));
    EXPECT_EQ(out.data().shape(), (Shape{6, 5, 4}));
}

TEST(Dkm, EvalModeBuildsNoGraph)
{
    Rng rng(45);
    Tensor w = clusterableWeights(64, rng);
    DkmConfig cfg;
    cfg.bits = 2;
    DkmLayer layer(cfg);
    NoGradGuard ng;
    Variable out = layer.forward(Variable(w, true));
    EXPECT_EQ(out.gradFn(), nullptr);
}

TEST(Dkm, RejectsBadConfig)
{
    DkmConfig cfg;
    cfg.bits = 0;
    EXPECT_THROW(DkmLayer{cfg}, FatalError);
    cfg.bits = 9;
    EXPECT_THROW(DkmLayer{cfg}, FatalError);
    cfg.bits = 3;
    cfg.maxIters = 0;
    EXPECT_THROW(DkmLayer{cfg}, FatalError);
}

} // namespace
} // namespace edkm
