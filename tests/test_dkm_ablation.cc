/**
 * @file
 * Ablation tests for the DKM hyper-parameters called out in DESIGN.md
 * (design choice #4): temperature controls assignment hardness, and the
 * convergence criterion trades iterations against centroid stability.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/edkm.h"
#include "core/kmeans.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace edkm {
namespace {

Tensor
modalWeights(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    Tensor w = Tensor::empty({n});
    for (int64_t i = 0; i < n; ++i) {
        float c = static_cast<float>(rng.randint(0, 3)) * 0.1f - 0.15f;
        w.setFlatAt(i, c + rng.normal(0.0f, 0.004f));
    }
    return w;
}

/** Soft-clustered output under a given temperature. */
Tensor
clusterAt(const Tensor &w, float tau, int bits = 2, int iters = 6)
{
    EdkmConfig cfg;
    cfg.dkm.bits = bits;
    cfg.dkm.temperature = tau;
    cfg.dkm.maxIters = iters;
    cfg.dkm.convergenceEps = 0.0f;
    EdkmLayer layer(cfg);
    NoGradGuard ng;
    return layer.forward(Variable(w, false)).data();
}

TEST(DkmTemperature, SmallTauApproachesHardKmeans)
{
    Tensor w = modalWeights(512, 3);
    // Hard k-means reference.
    std::vector<float> vals = w.toVector();
    Rng rng(1234); // DkmConfig default seed
    KMeansResult km = kmeans1d(vals, {}, 4, rng, 25);
    Tensor hard = Tensor::empty({512});
    for (int64_t i = 0; i < 512; ++i) {
        hard.setFlatAt(
            i, km.centroids[static_cast<size_t>(km.assignments[i])]);
    }
    Tensor soft = clusterAt(w, 1e-6f);
    // Near-zero temperature: assignments are effectively hard, so the
    // soft output lands on (near) the k-means fixed point.
    EXPECT_LT(maxAbsDiff(soft, hard), 0.02f);
}

TEST(DkmTemperature, LargeTauApproachesGlobalMean)
{
    Tensor w = modalWeights(512, 5);
    float mean = meanAll(w).item();
    Tensor soft = clusterAt(w, 1e3f);
    // Huge temperature: uniform attention, every centroid collapses to
    // the mean, and W~ becomes (nearly) constant.
    for (int64_t i = 0; i < 512; i += 64) {
        EXPECT_NEAR(soft.flatAt(i), mean, 5e-3f);
    }
}

TEST(DkmTemperature, ReconstructionErrorMonotoneNearOptimum)
{
    // Moving tau from hard (small) to soft (large) degrades
    // reconstruction fidelity on clusterable data.
    Tensor w = modalWeights(1024, 7);
    double err_small, err_mid, err_large;
    auto mse = [&](float tau) {
        Tensor d = sub(clusterAt(w, tau), w);
        return static_cast<double>(sumAll(mul(d, d)).item());
    };
    err_small = mse(1e-6f);
    err_mid = mse(1e-2f);
    err_large = mse(10.0f);
    EXPECT_LE(err_small, err_mid + 1e-9);
    EXPECT_LT(err_mid, err_large);
}

class ConvergenceSweep : public ::testing::TestWithParam<float> {};

TEST_P(ConvergenceSweep, LooserEpsFewerIterations)
{
    Tensor w = modalWeights(512, 9);
    EdkmConfig tight;
    tight.dkm.bits = 2;
    tight.dkm.maxIters = 40;
    tight.dkm.convergenceEps = 1e-7f;
    EdkmLayer tight_layer(tight);

    EdkmConfig loose = tight;
    loose.dkm.convergenceEps = GetParam();
    EdkmLayer loose_layer(loose);

    NoGradGuard ng;
    tight_layer.forward(Variable(w, false));
    loose_layer.forward(Variable(w, false));
    EXPECT_LE(loose_layer.report().iterations,
              tight_layer.report().iterations);
    // Final centroids agree to within the looser tolerance's scale.
    EXPECT_LT(maxAbsDiff(loose_layer.centroids(),
                         tight_layer.centroids()),
              std::max(GetParam() * 50.0f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Eps, ConvergenceSweep,
                         ::testing::Values(1e-5f, 1e-4f, 1e-3f));

TEST(DkmIterations, MoreIterationsRefineCentroids)
{
    // Centroid movement per iteration shrinks: compare iteration counts
    // needed at the default tolerance as maxIters grows.
    Tensor w = modalWeights(512, 11);
    int converged_at = 0;
    for (int cap : {1, 2, 4, 8, 16}) {
        EdkmConfig cfg;
        cfg.dkm.bits = 2;
        cfg.dkm.maxIters = cap;
        cfg.dkm.convergenceEps = 1e-6f;
        EdkmLayer layer(cfg);
        NoGradGuard ng;
        layer.forward(Variable(w, false));
        if (layer.report().iterations < cap) {
            converged_at = layer.report().iterations;
            break;
        }
    }
    EXPECT_GT(converged_at, 0) << "never converged within 16 iters";
    EXPECT_LE(converged_at, 16);
}

} // namespace
} // namespace edkm
