/**
 * @file
 * Tests for the real multi-process dist subsystem: ProcessGroup
 * rendezvous and rank assignment, the bit-identity gate (multi-process
 * sharded clustering == single-process simulation, both transports,
 * 2 and 4 learners), failure paths (child death surfaces a typed error
 * at the parent without hanging) and shm hygiene (no leaked segments).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <vector>

#include <unistd.h>

#include "device/device_manager.h"
#include "dist/process_group.h"
#include "dist/sharded_cluster.h"
#include "dist/transport.h"
#include "util/rng.h"

namespace edkm {
namespace dist {
namespace {

using Clock = std::chrono::steady_clock;

/** Leaked shm segments from this subsystem (edkm_* entries). */
int
edkmShmEntries()
{
    DIR *d = ::opendir("/dev/shm");
    if (d == nullptr) {
        return 0; // no tmpfs mount: nothing can leak
    }
    int count = 0;
    while (struct dirent *e = ::readdir(d)) {
        if (std::strncmp(e->d_name, "edkm_", 5) == 0) {
            ++count;
        }
    }
    ::closedir(d);
    return count;
}

class DistProcess : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DeviceManager::instance().resetAll();
    }
};

TEST_F(DistProcess, RankAssignmentAndBarrier)
{
    for (TransportKind kind :
         {TransportKind::kShm, TransportKind::kSocket}) {
        ProcessGroupOptions pg;
        pg.world = 3;
        pg.kind = kind;
        std::vector<std::vector<uint8_t>> results =
            ProcessGroup::run(pg, [](Transport &t) {
                // The rendezvous barrier already ran; report identity.
                return std::vector<uint8_t>{
                    static_cast<uint8_t>(t.rank()),
                    static_cast<uint8_t>(t.worldSize())};
            });
        ASSERT_EQ(results.size(), 3u);
        for (int r = 0; r < 3; ++r) {
            ASSERT_EQ(results[static_cast<size_t>(r)].size(), 2u);
            EXPECT_EQ(results[static_cast<size_t>(r)][0], r);
            EXPECT_EQ(results[static_cast<size_t>(r)][1], 3);
        }
    }
}

TEST_F(DistProcess, SingleLearnerWorld)
{
    ProcessGroupOptions pg;
    pg.world = 1;
    std::vector<std::vector<uint8_t>> results =
        ProcessGroup::run(pg, [](Transport &t) {
            t.barrier(); // must be a no-op, not a hang
            return std::vector<uint8_t>{static_cast<uint8_t>(t.rank())};
        });
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0][0], 0);
}

/** Payload far larger than the shm ring: exercises the interleaved
 *  (wraparound) exchange path. */
TEST_F(DistProcess, LargePayloadWrapsRing)
{
    ProcessGroupOptions pg;
    pg.world = 2;
    pg.kind = TransportKind::kShm;
    pg.shmRingBytes = 256; // force many wraparounds
    std::vector<std::vector<uint8_t>> results =
        ProcessGroup::run(pg, [](Transport &t) {
            std::vector<uint8_t> mine(8192);
            for (size_t i = 0; i < mine.size(); ++i) {
                mine[i] = static_cast<uint8_t>((i + t.rank() * 7) % 251);
            }
            std::vector<size_t> sizes(2, mine.size());
            std::vector<std::vector<uint8_t>> chunks;
            t.allGatherBytes(mine, sizes, chunks);
            // Return the peer's chunk so the parent can verify it.
            return chunks[static_cast<size_t>(1 - t.rank())];
        });
    for (int r = 0; r < 2; ++r) {
        const std::vector<uint8_t> &peer =
            results[static_cast<size_t>(r)];
        ASSERT_EQ(peer.size(), 8192u);
        for (size_t i = 0; i < peer.size(); ++i) {
            ASSERT_EQ(peer[i],
                      static_cast<uint8_t>((i + (1 - r) * 7) % 251));
        }
    }
}

/** The hard gate: multi-process clustering output bit-identical to the
 *  single-process simulation at equal shard layout, on both transports,
 *  at 2 and 4 learners. */
TEST_F(DistProcess, BitIdentitySimVsProcesses)
{
    Rng rng(42);
    Tensor w = Tensor::rand({24, 16}, rng);
    ShardedClusterOptions opts;
    opts.edkm.dkm.bits = 3;
    opts.edkm.dkm.maxIters = 4;
    opts.edkm.uniquify = true;

    for (int world : {2, 4}) {
        ShardedClusterResult sim =
            shardedClusterSimulate(w, opts, world);
        for (TransportKind kind :
             {TransportKind::kShm, TransportKind::kSocket}) {
            ProcessGroupOptions pg;
            pg.world = world;
            pg.kind = kind;
            ShardedClusterResult proc =
                shardedClusterProcesses(w, opts, pg);
            SCOPED_TRACE("world=" + std::to_string(world) + " kind=" +
                         transportKindName(kind));
            ASSERT_EQ(proc.weights.size(), sim.weights.size());
            EXPECT_EQ(0, std::memcmp(proc.weights.data(),
                                     sim.weights.data(),
                                     sim.weights.size() * 4));
            ASSERT_EQ(proc.centroids.size(), sim.centroids.size());
            EXPECT_EQ(0, std::memcmp(proc.centroids.data(),
                                     sim.centroids.data(),
                                     sim.centroids.size() * 4));
            EXPECT_EQ(proc.iterations, sim.iterations);
            EXPECT_EQ(proc.uniqueCount, sim.uniqueCount);
            // Equal shard layout: the cross-process ledger (measured
            // bytes) must equal the functional ledger (ring model) for
            // the all-reduce, which moves exactly (L-1)*n*4 in both.
            EXPECT_EQ(proc.comm.allReduceBytes,
                      sim.comm.allReduceBytes);
            EXPECT_GT(proc.transportBytesReceived, 0);
        }
    }
}

TEST_F(DistProcess, BitIdentityWithoutUniquification)
{
    Rng rng(7);
    Tensor w = Tensor::rand({40}, rng);
    ShardedClusterOptions opts;
    opts.edkm.dkm.bits = 2;
    opts.edkm.dkm.maxIters = 3;
    opts.edkm.uniquify = false;

    ShardedClusterResult sim = shardedClusterSimulate(w, opts, 2);
    ProcessGroupOptions pg;
    pg.world = 2;
    pg.kind = TransportKind::kSocket;
    ShardedClusterResult proc = shardedClusterProcesses(w, opts, pg);
    ASSERT_EQ(proc.weights.size(), sim.weights.size());
    EXPECT_EQ(0, std::memcmp(proc.weights.data(), sim.weights.data(),
                             sim.weights.size() * 4));
    EXPECT_EQ(proc.uniqueCount, 0);
}

TEST_F(DistProcess, LawaAveragingBitIdentical)
{
    Rng rng(13);
    Tensor w = Tensor::rand({16, 8}, rng);
    ShardedClusterOptions opts;
    opts.edkm.dkm.bits = 3;
    opts.edkm.dkm.maxIters = 5;
    opts.edkm.dkm.convergenceEps = 0.0f; // run all 5 iterations
    opts.lawaK = 2;

    ShardedClusterResult sim = shardedClusterSimulate(w, opts, 2);
    ProcessGroupOptions pg;
    pg.world = 2;
    pg.kind = TransportKind::kShm;
    ShardedClusterResult proc = shardedClusterProcesses(w, opts, pg);
    EXPECT_EQ(0, std::memcmp(proc.centroids.data(), sim.centroids.data(),
                             sim.centroids.size() * 4));
    EXPECT_EQ(0, std::memcmp(proc.weights.data(), sim.weights.data(),
                             sim.weights.size() * 4));

    // LAWA must actually change the final centroids vs the last
    // iterate (unless the loop converged in one step, which 5 iters of
    // this input does not).
    ShardedClusterOptions plain = opts;
    plain.lawaK = 0;
    ShardedClusterResult base = shardedClusterSimulate(w, plain, 2);
    EXPECT_NE(0, std::memcmp(base.centroids.data(),
                             sim.centroids.data(),
                             sim.centroids.size() * 4));
}

TEST_F(DistProcess, OverlapOffloadPreservesBitsAndReusesBuffers)
{
    Rng rng(99);
    Tensor w = Tensor::rand({32, 16}, rng, Device::gpu(0));
    ShardedClusterOptions opts;
    opts.edkm.dkm.bits = 4;
    opts.edkm.dkm.maxIters = 6;
    opts.edkm.dkm.convergenceEps = 0.0f; // run all 6 iterations

    ShardedClusterResult plain = shardedClusterSimulate(w, opts, 2);
    opts.overlapOffload = true;
    ShardedClusterResult overlapped = shardedClusterSimulate(w, opts, 2);
    ASSERT_EQ(plain.weights.size(), overlapped.weights.size());
    EXPECT_EQ(0, std::memcmp(plain.weights.data(),
                             overlapped.weights.data(),
                             plain.weights.size() * 4));
    EXPECT_EQ(0, std::memcmp(plain.centroids.data(),
                             overlapped.centroids.data(),
                             plain.centroids.size() * 4));
    // Same-sized table shard every iteration: the double buffer must
    // recycle storage from the third offload on.
    EXPECT_EQ(plain.marshalBufferReuses, 0);
    EXPECT_GE(overlapped.marshalBufferReuses, 1);
}

TEST_F(DistProcess, ChildDeathSurfacesTypedErrorFast)
{
    for (TransportKind kind :
         {TransportKind::kShm, TransportKind::kSocket}) {
        ProcessGroupOptions pg;
        pg.world = 2;
        pg.kind = kind;
        pg.timeoutSec = 20.0;
        auto t0 = Clock::now();
        try {
            ProcessGroup::run(pg, [](Transport &t) {
                if (t.rank() == 1) {
                    ::_exit(7); // die mid-collective, no report
                }
                // Rank 0 blocks on the now-dead peer; it must be
                // released by abort/EOF, not by running out the clock.
                t.barrier();
                return std::vector<uint8_t>{0};
            });
            FAIL() << "expected DistError ("
                   << transportKindName(kind) << ")";
        } catch (const DistError &e) {
            std::string what = e.what();
            EXPECT_NE(what.find("rank"), std::string::npos) << what;
        }
        double elapsed =
            std::chrono::duration<double>(Clock::now() - t0).count();
        // Typed error well before the collective timeout: the parent
        // reacts to the death, it does not wait it out.
        EXPECT_LT(elapsed, 15.0)
            << "transport " << transportKindName(kind);
    }
}

TEST_F(DistProcess, ChildErrorPropagatesMessage)
{
    ProcessGroupOptions pg;
    pg.world = 2;
    pg.kind = TransportKind::kSocket;
    try {
        ProcessGroup::run(pg, [](Transport &t) {
            if (t.rank() == 0) {
                throw DistError("synthetic failure in learner");
            }
            t.barrier();
            return std::vector<uint8_t>{1};
        });
        FAIL() << "expected DistError";
    } catch (const DistError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
        EXPECT_NE(what.find("synthetic failure"), std::string::npos)
            << what;
    }
}

TEST_F(DistProcess, ShmSegmentsNeverLeak)
{
    int before = edkmShmEntries();

    // Successful run.
    {
        ProcessGroupOptions pg;
        pg.world = 2;
        pg.kind = TransportKind::kShm;
        ProcessGroup::run(pg, [](Transport &t) {
            t.barrier();
            return std::vector<uint8_t>{static_cast<uint8_t>(t.rank())};
        });
    }
    EXPECT_EQ(edkmShmEntries(), before);

    // Failure run: children SIGKILLed mid-collective. The segment is
    // unlinked before fork, so even this leaks nothing.
    {
        ProcessGroupOptions pg;
        pg.world = 2;
        pg.kind = TransportKind::kShm;
        EXPECT_THROW(ProcessGroup::run(pg,
                                       [](Transport &t) {
                                           if (t.rank() == 1) {
                                               ::_exit(3);
                                           }
                                           t.barrier();
                                           return std::vector<uint8_t>{
                                               0};
                                       }),
                     DistError);
    }
    EXPECT_EQ(edkmShmEntries(), before);
}

TEST_F(DistProcess, TransportKindFromEnv)
{
    ::setenv("EDKM_DIST_TRANSPORT", "socket", 1);
    EXPECT_EQ(transportKindFromEnv(), TransportKind::kSocket);
    ::setenv("EDKM_DIST_TRANSPORT", "shm", 1);
    EXPECT_EQ(transportKindFromEnv(), TransportKind::kShm);
    ::setenv("EDKM_DIST_TRANSPORT", "bogus", 1);
    EXPECT_EQ(transportKindFromEnv(), TransportKind::kShm);
    ::unsetenv("EDKM_DIST_TRANSPORT");
    EXPECT_EQ(transportKindFromEnv(), TransportKind::kShm);
}

} // namespace
} // namespace dist
} // namespace edkm
