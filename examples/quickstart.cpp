/**
 * @file
 * Quickstart: compress one weight matrix with eDKM.
 *
 * Demonstrates the core API in ~40 lines: make a weight tensor, run the
 * memory-efficient differentiable clustering forward/backward (as a
 * fine-tuning step would), inspect the memory diagnostics, and freeze
 * the result into the deployable palettized format.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/edkm.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

int
main()
{
    // A "pretrained" weight matrix in bf16 (as LLM fine-tuning uses).
    Rng rng(42);
    Tensor weight = Tensor::randn({256, 256}, rng, Device::cpu(), 0.02f)
                        .to(DType::kBf16)
                        .to(DType::kF32);

    // Configure eDKM: 3 bits/weight (8 clusters), uniquification on.
    EdkmConfig config;
    config.dkm.bits = 3;
    config.dkm.maxIters = 8;
    EdkmLayer edkm(config);

    // Differentiable clustering: gradients flow through to `w`.
    Variable w(weight, /*requires_grad=*/true);
    Variable clustered = edkm.forward(w);

    // A toy task loss on the clustered weights (a real fine-tuning loop
    // would use the model's task loss instead).
    Variable loss = af::meanAll(af::square(clustered));
    backward(loss);

    const EdkmReport &report = edkm.report();
    std::cout << "eDKM clustered " << weight.numel() << " weights into "
              << (1 << config.dkm.bits) << " clusters\n"
              << "  iterations          : " << report.iterations << "\n"
              << "  unique 16-bit values: " << report.uniqueCount << "\n"
              << "  saved for backward  : " << report.savedBytes
              << " bytes\n"
              << "  dense map would be  : "
              << report.denseMapBytes * report.iterations << " bytes ("
              << static_cast<double>(report.denseMapBytes) *
                     report.iterations / report.savedBytes
              << "x more)\n"
              << "  grad norm reached w : "
              << sumAll(square(w.grad())).item() << "\n";

    // Freeze into the deployable LUT + 3-bit-index format.
    PalettizedTensor packed = edkm.palettize(weight);
    std::cout << "palettized payload    : " << packed.payloadBytes()
              << " bytes (" << packed.bitsPerWeight()
              << " bits/weight vs 16 for bf16)\n"
              << "reconstruction error  : "
              << maxAbsDiff(packed.decompress(), weight) << " (max abs)\n";
    return 0;
}
