/**
 * @file
 * Walkthrough of the paper's Table 1 and Fig 2: how PyTorch-style
 * storage/metadata tensors duplicate data when offloaded to CPU, and how
 * the cross-device marshaling layer removes the redundancy.
 *
 * Build & run:  ./build/examples/marshaling_demo
 */

#include <iomanip>
#include <iostream>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

double
mb(int64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void
printRow(const std::string &code, int64_t gpu, int64_t cpu)
{
    std::cout << "  " << std::left << std::setw(34) << code << std::right
              << std::setw(6) << mb(gpu) << std::setw(6) << mb(cpu)
              << "\n";
}

} // namespace

int
main()
{
    DeviceManager &mgr = DeviceManager::instance();
    Rng rng(7);

    std::cout << "=== Table 1: naive cross-device copies ===\n";
    std::cout << "  " << std::left << std::setw(34) << "code"
              << std::right << std::setw(6) << "GPU" << std::setw(6)
              << "CPU" << "  (MB)\n";
    {
        Tensor x0 = Tensor::rand({1024, 1024}, rng, Device::gpu(0));
        printRow("x0 = rand(1024,1024) on gpu",
                 mgr.stats(Device::gpu(0)).currentBytes,
                 mgr.stats(Device::cpu()).currentBytes);
        Tensor x1 = x0.view({-1, 1});
        printRow("x1 = x0.view(-1,1)",
                 mgr.stats(Device::gpu(0)).currentBytes,
                 mgr.stats(Device::cpu()).currentBytes);
        Tensor y0 = x0.to(Device::cpu());
        printRow("y0 = x0.to(cpu)",
                 mgr.stats(Device::gpu(0)).currentBytes,
                 mgr.stats(Device::cpu()).currentBytes);
        Tensor y1 = x1.to(Device::cpu());
        printRow("y1 = x1.to(cpu)   <-- duplicate!",
                 mgr.stats(Device::gpu(0)).currentBytes,
                 mgr.stats(Device::cpu()).currentBytes);
        std::cout << "  x0/x1 share storage on GPU, but y0/y1 do not on "
                     "CPU: 8 MB where 4 MB suffices.\n\n";
    }
    mgr.resetAll();

    std::cout << "=== Fig 2: the same saves through the marshaling "
                 "layer ===\n";
    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    Variable x0(Tensor::rand({1024, 1024}, rng, Device::gpu(0)), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        Variable x1 = af::view(x0, {-1, 1});
        // Two ops save x1 and x0 for backward (as a training graph
        // would); the marshaling layer detects that they share storage.
        Variable a = af::square(x1);
        Variable b = af::square(x0);
        loss = af::add(af::sumAll(a), af::sumAll(b));
    }
    const MarshalStats &s = ctx.stats();
    std::cout << "  tensors entering hook : " << s.packs << "\n"
              << "  actual copies to CPU  : " << s.copies << "\n"
              << "  duplicates avoided    : " << s.duplicatesAvoided
              << "\n"
              << "  CPU bytes resident    : " << mb(ctx.residentBytes())
              << " MB (naive: "
              << mb(s.bytesCopied + s.bytesAvoided) << " MB)\n"
              << "  GPU->CPU traffic      : "
              << mb(mgr.ledger().d2hBytes) << " MB\n";

    backward(loss);
    std::cout << "  backward OK; gradient restored through the op-trace "
                 "replay (max|grad - 4x| = "
              << maxAbsDiff(x0.grad(), mulScalar(x0.data(), 4.0f))
              << ")\n";
    return 0;
}
