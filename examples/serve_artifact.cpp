/**
 * @file
 * Serving round trip on the v2 artifact: train + compress a model with
 * eDKM, save the sectioned v2 container, then serve it the zero-copy
 * way — mmap-open with ArtifactReader, lazy/streamed consumption
 * through InferenceEngine, batched greedy generation — and verify the
 * served tokens are identical to generating on the eagerly
 * reconstructed model (they are bit-identical by contract, not just
 * close).
 *
 * Build & run:  ./build/example_serve_artifact
 * EDKM_EXAMPLE_FAST=1 shrinks steps for CI smoke runs.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "data/synthetic.h"
#include "eval/train.h"
#include "serve/engine.h"
#include "serve/reader.h"
#include "tensor/ops.h"

using namespace edkm;

namespace {

/** Eager reference: greedy decode on a reconstructed model. */
std::vector<int64_t>
eagerGenerate(nn::MiniLlama &model, const std::vector<int64_t> &prompt,
              int64_t steps)
{
    NoGradGuard ng;
    std::vector<int64_t> ctx = prompt;
    for (int64_t s = 0; s < steps; ++s) {
        Tensor tokens = Tensor::fromIndices(
            ctx, {1, static_cast<int64_t>(ctx.size())});
        Tensor logits = model.forward(tokens).data();
        Tensor last =
            logits.slice(0, logits.size(0) - 1, logits.size(0));
        ctx.push_back(argmaxLastDim(last).flatAtInt(0));
    }
    return ctx;
}

} // namespace

int
main()
{
    bool fast = std::getenv("EDKM_EXAMPLE_FAST") != nullptr;

    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 2;

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream =
        corpus.buildStream(corpus.generate(fast ? 300 : 800, 11), tok);

    nn::MiniLlama model(cfg);
    eval::TrainConfig tc;
    tc.steps = fast ? 40 : 150;
    tc.batch = 8;
    tc.seq = 48;
    tc.optimizer.lr = 3e-3f;
    std::cout << "training...\n";
    eval::trainLm(model, stream, tc);

    // Compress with eDKM and save the v2 (sectioned, mmap-friendly)
    // container.
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 2;
    plan.embeddingBits = 8;
    api::CalibData calib;
    calib.trainStream = &stream;
    calib.trainConfig = tc;
    calib.trainConfig.steps = fast ? 10 : 40;
    calib.trainConfig.optimizer.lr = 5e-4f;
    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));
    std::cout << "compressed to " << res.report.size.bitsPerWeight
              << " bits/weight\n";

    std::string path = "/tmp/edkm_serve_artifact.edkm";
    res.artifact.save(path);

    // Serve: map the file read-only and consume payloads in place.
    auto reader = serve::ArtifactReader::open(path);
    std::cout << "opened " << path << " ("
              << (reader->mapped() ? "mmap" : "read fallback") << ", "
              << reader->fileBytes() / 1024 << " KiB, "
              << reader->sections().size() << " sections, v"
              << reader->version() << ")\n";
    serve::InferenceEngine engine(reader);

    // A batch of requests, served through the engine's request API.
    std::vector<std::string> prompts = {
        "Instruction: add 2 and 3\nResponse: ",
        "Instruction: repeat the word cat\nResponse: "};
    int64_t steps = 8;
    std::vector<serve::InferenceEngine::Request> batch;
    for (const std::string &p : prompts) {
        batch.push_back({tok.encode(p), steps});
    }
    auto responses = engine.generate(batch);

    const serve::EngineStats &st = engine.stats();
    std::cout << "served batch of " << batch.size() << ": "
              << st.streamedMatmuls << " streamed LUT+index matmuls, "
              << st.decodes << " lazy dense decodes, "
              << engine.residentWeightBytes()
              << " resident decoded weight bytes\n";

    // Reference: the eager reconstruct path must produce the exact
    // same tokens.
    nn::MiniLlama eager = res.artifact.reconstruct();
    bool ok = true;
    for (size_t i = 0; i < batch.size(); ++i) {
        std::vector<int64_t> want =
            eagerGenerate(eager, batch[i].prompt, steps);
        bool match = responses[i].tokens == want;
        ok = ok && match;
        std::string text = tok.decode(std::vector<int64_t>(
            responses[i].tokens.begin() +
                static_cast<int64_t>(batch[i].prompt.size()),
            responses[i].tokens.end()));
        std::cout << "request " << i << ": \"" << text << "\" "
                  << (match ? "(matches eager)" : "(MISMATCH)") << "\n";
    }
    std::remove(path.c_str());
    std::cout << (ok ? "MATCH: zero-copy serving is bit-exact\n"
                     : "MISMATCH\n");
    return ok ? 0 : 1;
}
