/**
 * @file
 * The headline experiment at laptop scale: fine-tune and compress a
 * LLaMA-style model to 3 bits/weight with eDKM (paper section 3),
 * driven entirely through the unified compression API.
 *
 * Pipeline:
 *   1. "pretrain" a MiniLlama on the synthetic corpus,
 *   2. describe the compression declaratively: a CompressionPlan
 *      (scheme "edkm", 3 bits, embeddings at 8 bits, lm_head kept at 4
 *      bits via a per-layer override rule),
 *   3. run it with an api::Session — the eDKM clustering layers are
 *      attached, fine-tuned on the instruction data (the Alpaca
 *      stand-in), and frozen into the palettized format, with progress
 *      reported per stage,
 *   4. save the whole-model artifact, reload it, and evaluate both on
 *      the 7-task benchmark suite.
 *
 * Build & run:  ./build/example_compress_llm
 * EDKM_EXAMPLE_FAST=1 shrinks steps for CI smoke runs.
 */

#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "api/plan.h"
#include "api/session.h"
#include "data/synthetic.h"
#include "eval/mc_harness.h"
#include "eval/train.h"

using namespace edkm;

int
main()
{
    bool fast = std::getenv("EDKM_EXAMPLE_FAST") != nullptr;

    // Model: LLaMA architecture at laptop scale.
    nn::LlamaConfig mcfg;
    mcfg.vocab = 256;
    mcfg.dim = 48;
    mcfg.heads = 4;
    mcfg.layers = 2;
    nn::MiniLlama model(mcfg);
    std::cout << "MiniLlama: " << model.parameterCount()
              << " parameters, " << mcfg.layers << " layers, dim "
              << mcfg.dim << "\n";

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto pretrain_stream =
        corpus.buildStream(corpus.generate(fast ? 400 : 1500, 11), tok);
    auto alpaca_stream =
        corpus.buildStream(corpus.generate(fast ? 200 : 800, 23), tok);

    // 1. Pretrain.
    eval::TrainConfig pre;
    pre.steps = fast ? 60 : 250;
    pre.batch = 8;
    pre.seq = 48;
    pre.optimizer.lr = 3e-3f;
    std::cout << "\n[1/4] pretraining...\n";
    eval::TrainReport pr = eval::trainLm(model, pretrain_stream, pre);
    std::cout << "  loss " << pr.firstLoss << " -> " << pr.lastLoss
              << "\n";

    auto suite =
        eval::buildSyntheticSuite(corpus, fast ? 8 : 25, 99);
    eval::SuiteResult fp_acc = eval::evaluateSuite(model, tok, suite);
    eval::SizeReport fp_size = eval::fp16Size(model);

    // 2+3. Compress a model in 10 lines: declare the plan, run the
    // session. The paper's setup: eDKM at 3 bits with AdamW
    // fine-tuning, embeddings at 8 bits; scaled-up lr for the tiny
    // model, gradient clipping 1.0.
    std::cout << "[2/4] eDKM fine-tuning (3 bit/weight) via "
              << "CompressionPlan + Session...\n";
    api::CompressionPlan plan;
    plan.scheme = "edkm";             // resolved by CompressorRegistry
    plan.bits = 3;
    plan.dkmMaxIters = 4;
    plan.embeddingBits = 8;
    plan.rules.push_back({"lm_head", false, 4, 0}); // head kept at 4 bit

    api::CalibData calib;
    calib.trainStream = &alpaca_stream;
    calib.trainConfig.steps = fast ? 30 : 120;
    calib.trainConfig.batch = 8;
    calib.trainConfig.seq = 48;
    calib.trainConfig.optimizer.lr = 5e-4f;

    api::SessionConfig scfg;
    scfg.onProgress = [](const api::Progress &p) {
        if (p.index == 0) {
            std::cout << "  [" << p.stage << "] " << std::flush;
        }
        if (p.index + 1 == p.total) {
            std::cout << p.total << " step" << (p.total > 1 ? "s" : "")
                      << "\n";
        }
    };
    api::Session session(scfg);
    api::SessionResult res = session.run(model, plan, std::move(calib));
    std::cout << "  scheme " << session.lastCompressor()->name()
              << " done, " << res.report.entries.size()
              << " payload entries\n";

    // 4. Save the whole-model artifact, reload, evaluate both.
    std::cout << "[3/4] saving + reloading the model artifact...\n";
    std::string path = "/tmp/edkm_compress_llm.edkm";
    res.artifact.save(path);
    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    nn::MiniLlama reloaded = loaded.reconstruct();
    std::remove(path.c_str());

    std::cout << "[4/4] evaluating...\n\n";
    eval::SuiteResult edkm_acc = eval::evaluateSuite(model, tok, suite);
    eval::SuiteResult reload_acc =
        eval::evaluateSuite(reloaded, tok, suite);

    std::cout << std::fixed << std::setprecision(1);
    std::cout << "task                 fp16    eDKM-3bit  reloaded\n";
    for (size_t i = 0; i < suite.size(); ++i) {
        std::cout << "  " << std::left << std::setw(18)
                  << suite[i].name << std::right << std::setw(6)
                  << 100.0 * fp_acc.taskAccuracy[i].second
                  << std::setw(10)
                  << 100.0 * edkm_acc.taskAccuracy[i].second
                  << std::setw(10)
                  << 100.0 * reload_acc.taskAccuracy[i].second << "\n";
    }
    std::cout << "  " << std::left << std::setw(18) << "average"
              << std::right << std::setw(6) << 100.0 * fp_acc.average
              << std::setw(10) << 100.0 * edkm_acc.average
              << std::setw(10) << 100.0 * reload_acc.average << "\n\n";

    bool lossless = reload_acc.average == edkm_acc.average;
    eval::SizeReport edkm_size = res.report.size;
    std::cout << std::setprecision(2);
    std::cout << "model size: " << fp_size.payloadBytes / 1024.0
              << " KiB (fp16) -> " << edkm_size.payloadBytes / 1024.0
              << " KiB (eDKM), " << edkm_size.bitsPerWeight
              << " bits/weight\n"
              << "at LLaMA-7B scale this rate gives "
              << edkm_size.projectedGb7B << " GB (paper: 12.6 GB -> 2.5 "
              << "GB)\n"
              << "artifact reload "
              << (lossless ? "reproduces the compressed model exactly\n"
                           : "MISMATCH\n");
    return lossless ? 0 : 1;
}
