/**
 * @file
 * The headline experiment at laptop scale: fine-tune and compress a
 * LLaMA-style model to 3 bits/weight with eDKM (paper section 3).
 *
 * Pipeline:
 *   1. "pretrain" a MiniLlama on the synthetic corpus,
 *   2. attach eDKM train-time clustering to every Linear and fine-tune
 *      on the instruction data (the Alpaca stand-in),
 *   3. freeze the clustered weights into the palettized format
 *      (embeddings at 8 bits, as the paper does),
 *   4. evaluate the compressed model on the 7-task benchmark suite and
 *      report sizes.
 *
 * Build & run:  ./build/examples/compress_llm
 */

#include <iomanip>
#include <iostream>

#include "data/synthetic.h"
#include "eval/compress.h"
#include "eval/mc_harness.h"
#include "eval/train.h"

using namespace edkm;

int
main()
{
    // Model: LLaMA architecture at laptop scale.
    nn::LlamaConfig mcfg;
    mcfg.vocab = 256;
    mcfg.dim = 48;
    mcfg.heads = 4;
    mcfg.layers = 2;
    nn::MiniLlama model(mcfg);
    std::cout << "MiniLlama: " << model.parameterCount()
              << " parameters, " << mcfg.layers << " layers, dim "
              << mcfg.dim << "\n";

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto pretrain_stream =
        corpus.buildStream(corpus.generate(1500, 11), tok);
    auto alpaca_stream =
        corpus.buildStream(corpus.generate(800, 23), tok);

    // 1. Pretrain.
    eval::TrainConfig pre;
    pre.steps = 250;
    pre.batch = 8;
    pre.seq = 48;
    pre.optimizer.lr = 3e-3f;
    std::cout << "\n[1/4] pretraining...\n";
    eval::TrainReport pr = eval::trainLm(model, pretrain_stream, pre);
    std::cout << "  loss " << pr.firstLoss << " -> " << pr.lastLoss
              << "\n";

    auto suite = eval::buildSyntheticSuite(corpus, 25, 99);
    eval::SuiteResult fp_acc = eval::evaluateSuite(model, tok, suite);
    eval::SizeReport fp_size = eval::fp16Size(model);

    // 2. Attach eDKM (3-bit) and fine-tune on instructions -- the
    // paper's setup: AdamW lr 5e-5..., here scaled up for the tiny
    // model, gradient clipping 1.0.
    std::cout << "[2/4] eDKM fine-tuning (3 bit/weight)...\n";
    EdkmConfig ecfg;
    ecfg.dkm.bits = 3;
    ecfg.dkm.maxIters = 4;
    auto layers = eval::attachEdkm(model, ecfg);
    eval::TrainConfig ft;
    ft.steps = 120;
    ft.batch = 8;
    ft.seq = 48;
    ft.optimizer.lr = 5e-4f;
    eval::TrainReport fr = eval::trainLm(model, alpaca_stream, ft);
    std::cout << "  loss " << fr.firstLoss << " -> " << fr.lastLoss
              << "\n";

    // 3. Freeze into the deployable format.
    std::cout << "[3/4] palettizing (weights 3 bit, embeddings 8 bit)"
              << "...\n";
    eval::SizeReport edkm_size = eval::freezeEdkm(model, layers, 8);

    // 4. Evaluate the compressed model.
    std::cout << "[4/4] evaluating...\n\n";
    eval::SuiteResult edkm_acc = eval::evaluateSuite(model, tok, suite);

    std::cout << std::fixed << std::setprecision(1);
    std::cout << "task                 fp16    eDKM-3bit\n";
    for (size_t i = 0; i < suite.size(); ++i) {
        std::cout << "  " << std::left << std::setw(18)
                  << suite[i].name << std::right << std::setw(6)
                  << 100.0 * fp_acc.taskAccuracy[i].second
                  << std::setw(10)
                  << 100.0 * edkm_acc.taskAccuracy[i].second << "\n";
    }
    std::cout << "  " << std::left << std::setw(18) << "average"
              << std::right << std::setw(6) << 100.0 * fp_acc.average
              << std::setw(10) << 100.0 * edkm_acc.average << "\n\n";

    std::cout << std::setprecision(2);
    std::cout << "model size: " << fp_size.payloadBytes / 1024.0
              << " KiB (fp16) -> " << edkm_size.payloadBytes / 1024.0
              << " KiB (eDKM), " << edkm_size.bitsPerWeight
              << " bits/weight\n"
              << "at LLaMA-7B scale this rate gives "
              << edkm_size.projectedGb7B << " GB (paper: 12.6 GB -> 2.5 "
              << "GB)\n";
    return 0;
}
