/**
 * @file
 * Interactive walkthrough of the Table 2 ablation at demo scale: how
 * much saved-for-backward memory each eDKM technique removes for one
 * weight matrix, and what it costs in simulated time.
 *
 * The full-scale reproduction (attention-layer geometry, projections to
 * the paper's 7B setting) lives in bench/bench_table2_ablation; this
 * example keeps the output small and annotated.
 *
 * Build & run:  ./build/examples/ablation_demo
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "autograd/engine.h"
#include "autograd/functional.h"
#include "core/dkm.h"
#include "core/edkm.h"
#include "device/device_manager.h"
#include "marshal/marshal.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace edkm;

namespace {

struct Row
{
    std::string name;
    int64_t bytes;
    double seconds;
};

constexpr int64_t kSide = 160;

DkmConfig
dkmConfig()
{
    DkmConfig cfg;
    cfg.bits = 3;
    cfg.maxIters = 3;
    cfg.convergenceEps = 0.0f;
    return cfg;
}

Tensor
makeWeights()
{
    Rng rng(3);
    return Tensor::randn({kSide, kSide}, rng, Device::cpu(), 0.02f)
        .to(DType::kBf16)
        .to(DType::kF32)
        .to(Device::gpu(0));
}

/** One DKM fwd+bwd step through the composed dense layer. */
Row
runComposed(const std::string &name, MarshalConfig::Detection det)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetStats();
    MarshalConfig mc;
    mc.detection = det;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    DkmLayer layer(dkmConfig());
    Variable w(makeWeights(), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        loss = af::sumAll(af::square(layer.forward(w)));
    }
    int64_t resident = ctx.residentBytes();
    backward(loss);
    return {name, resident, mgr.simulatedSeconds()};
}

/** One step through the fused eDKM layer. */
Row
runFused(const std::string &name, bool uniquify, bool shard)
{
    DeviceManager &mgr = DeviceManager::instance();
    mgr.resetStats();
    MarshalConfig mc;
    mc.minOffloadBytes = 1;
    MarshalContext ctx(mc);
    auto group = std::make_shared<LearnerGroup>(8);
    EdkmConfig cfg;
    cfg.dkm = dkmConfig();
    cfg.uniquify = uniquify;
    cfg.shard = shard;
    EdkmLayer layer(cfg, group);
    Variable w(makeWeights(), true);
    Variable loss;
    {
        SavedTensorHooksGuard guard(&ctx);
        loss = af::sumAll(af::square(layer.forward(w)));
    }
    int64_t resident = ctx.residentBytes();
    backward(loss);
    return {name, resident, mgr.simulatedSeconds()};
}

} // namespace

int
main()
{
    std::cout << "Table 2-style ablation on one " << kSide << "x"
              << kSide << " bf16 weight matrix (3-bit DKM, 3 "
              << "iterations, 8 simulated learners)\n\n";

    std::vector<Row> rows;
    rows.push_back(runComposed("baseline (offload only)",
                               MarshalConfig::Detection::kNone));
    rows.push_back(runComposed("+ marshaling (M)",
                               MarshalConfig::Detection::kGraphWalk));
    rows.push_back(runFused("+ M + sharding (S)", false, true));
    rows.push_back(runFused("+ M + uniquification (U)", true, false));
    rows.push_back(runFused("+ M + U + S (full eDKM)", true, true));

    double base = static_cast<double>(rows[0].bytes);
    std::cout << std::left << std::setw(28) << "configuration"
              << std::right << std::setw(12) << "saved KiB"
              << std::setw(12) << "reduction" << std::setw(14)
              << "sim time ms" << "\n";
    for (const Row &r : rows) {
        std::cout << std::left << std::setw(28) << r.name << std::right
                  << std::setw(12) << std::fixed << std::setprecision(1)
                  << r.bytes / 1024.0 << std::setw(11)
                  << std::setprecision(1) << base / r.bytes << "x"
                  << std::setw(14) << std::setprecision(3)
                  << r.seconds * 1e3 << "\n";
    }
    std::cout << "\nReductions grow with |W| (the unique-value count "
                 "saturates at 2^16); the paper reports 130x for a "
                 "67M-weight attention layer.\n";
    return 0;
}
