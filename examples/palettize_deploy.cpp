/**
 * @file
 * Deployment round trip: compress a trained model with eDKM through
 * the unified API, save the *whole model* as one ModelArtifact (the
 * on-device artifact the paper targets — palettized LUT + n-bit
 * indices per weight, plus raw payloads for everything else), reload
 * it into a reconstructed model, and verify the reloaded model
 * generates identical text.
 *
 * Build & run:  ./build/example_palettize_deploy
 * EDKM_EXAMPLE_FAST=1 shrinks steps for CI smoke runs.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.h"
#include "api/session.h"
#include "autograd/variable.h"
#include "data/synthetic.h"
#include "eval/train.h"
#include "tensor/ops.h"

using namespace edkm;

namespace {

/** Greedy decode @p steps tokens from @p prompt. */
std::string
generate(nn::MiniLlama &model, const data::ByteTokenizer &tok,
         const std::string &prompt, int steps)
{
    NoGradGuard ng;
    std::vector<int64_t> ctx = tok.encode(prompt);
    for (int s = 0; s < steps; ++s) {
        Tensor tokens = Tensor::fromIndices(
            ctx, {1, static_cast<int64_t>(ctx.size())});
        Variable logits = model.forward(tokens);
        Tensor last =
            logits.data().slice(0, logits.data().size(0) - 1,
                                logits.data().size(0));
        ctx.push_back(argmaxLastDim(last).flatAtInt(0));
    }
    return tok.decode(
        std::vector<int64_t>(ctx.begin() + prompt.size(), ctx.end()));
}

} // namespace

int
main()
{
    bool fast = std::getenv("EDKM_EXAMPLE_FAST") != nullptr;

    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 2;

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream =
        corpus.buildStream(corpus.generate(fast ? 300 : 800, 11), tok);

    // Train a model worth deploying.
    nn::MiniLlama model(cfg);
    eval::TrainConfig tc;
    tc.steps = fast ? 60 : 200;
    tc.batch = 8;
    tc.seq = 48;
    tc.optimizer.lr = 3e-3f;
    std::cout << "training...\n";
    eval::trainLm(model, stream, tc);

    // Compress with eDKM through the unified API: the plan declares
    // the scheme, the session attaches/fine-tunes/freezes and owns the
    // clustering layers for the whole run.
    api::CompressionPlan plan;
    plan.scheme = "edkm";
    plan.bits = 3;
    plan.dkmMaxIters = 4;
    plan.embeddingBits = 8;

    api::CalibData calib;
    calib.trainStream = &stream;
    calib.trainConfig = tc;
    calib.trainConfig.steps = fast ? 20 : 60;
    calib.trainConfig.optimizer.lr = 5e-4f;

    api::Session session;
    api::SessionResult res = session.run(model, plan, std::move(calib));
    std::cout << "compressed to " << res.report.size.bitsPerWeight
              << " bits/weight\n";

    // One file is the deployable artifact for the whole model.
    std::string path = "/tmp/edkm_deploy.edkm";
    res.artifact.save(path);
    std::cout << "wrote " << path << " ("
              << res.artifact.entries.size() << " tensor payloads)\n";

    // Reload and reconstruct a fresh model from the artifact alone.
    api::ModelArtifact loaded = api::ModelArtifact::load(path);
    nn::MiniLlama reloaded = loaded.reconstruct();
    std::remove(path.c_str());

    // The reloaded model must generate identical text.
    std::string prompt = "Instruction: add 2 and 3\nResponse: ";
    std::string a = generate(model, tok, prompt, 8);
    std::string b = generate(reloaded, tok, prompt, 8);
    std::cout << "original : " << a << "\nreloaded : " << b << "\n"
              << (a == b ? "MATCH: deployment round trip is lossless\n"
                         : "MISMATCH\n");
    return a == b ? 0 : 1;
}
