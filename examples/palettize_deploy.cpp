/**
 * @file
 * Deployment round trip: compress a trained model with eDKM, serialize
 * every palettized tensor to disk (the on-device artifact the paper
 * targets -- LUT + n-bit indices, the format mobile accelerators
 * consume), reload it into a fresh model, and verify the reloaded model
 * generates identical text.
 *
 * Build & run:  ./build/examples/palettize_deploy
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "autograd/variable.h"
#include "data/synthetic.h"
#include "eval/compress.h"
#include "eval/train.h"
#include "tensor/ops.h"

using namespace edkm;

namespace {

/** Greedy decode @p steps tokens from @p prompt. */
std::string
generate(nn::MiniLlama &model, const data::ByteTokenizer &tok,
         const std::string &prompt, int steps)
{
    NoGradGuard ng;
    std::vector<int64_t> ctx = tok.encode(prompt);
    for (int s = 0; s < steps; ++s) {
        Tensor tokens = Tensor::fromIndices(
            ctx, {1, static_cast<int64_t>(ctx.size())});
        Variable logits = model.forward(tokens);
        Tensor last =
            logits.data().slice(0, logits.data().size(0) - 1,
                                logits.data().size(0));
        ctx.push_back(argmaxLastDim(last).flatAtInt(0));
    }
    return tok.decode(
        std::vector<int64_t>(ctx.begin() + prompt.size(), ctx.end()));
}

} // namespace

int
main()
{
    nn::LlamaConfig cfg;
    cfg.vocab = 256;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 2;

    data::SyntheticCorpus corpus(7);
    data::ByteTokenizer tok;
    auto stream = corpus.buildStream(corpus.generate(800, 11), tok);

    // Train a model worth deploying.
    nn::MiniLlama model(cfg);
    eval::TrainConfig tc;
    tc.steps = 200;
    tc.batch = 8;
    tc.seq = 48;
    tc.optimizer.lr = 3e-3f;
    std::cout << "training...\n";
    eval::trainLm(model, stream, tc);

    // Compress with eDKM and freeze.
    EdkmConfig ecfg;
    ecfg.dkm.bits = 3;
    ecfg.dkm.maxIters = 4;
    auto layers = eval::attachEdkm(model, ecfg);
    tc.steps = 60;
    tc.optimizer.lr = 5e-4f;
    eval::trainLm(model, stream, tc);
    eval::SizeReport size = eval::freezeEdkm(model, layers, 8);
    std::cout << "compressed to " << size.bitsPerWeight
              << " bits/weight\n";

    // Serialize every linear weight as a palettized artifact.
    std::vector<std::string> paths;
    auto linears = model.allLinears();
    for (size_t i = 0; i < linears.size(); ++i) {
        // Weights are already on the centroid grid after freezing, so
        // re-palettizing is exact.
        PalettizedTensor p =
            layers[i]->palettize(linears[i].second->weight().data());
        std::string path =
            "/tmp/edkm_deploy_" + std::to_string(i) + ".pal";
        p.save(path);
        paths.push_back(path);
    }
    std::cout << "wrote " << paths.size()
              << " palettized tensors to /tmp\n";

    // Reload into a fresh (differently initialised) model.
    nn::MiniLlama reloaded(cfg);
    // Copy the non-palettized parameters (norms, embeddings) directly.
    auto src_params = model.namedParameters();
    auto dst_params = reloaded.namedParameters();
    for (size_t i = 0; i < src_params.size(); ++i) {
        dst_params[i].second.mutableData() =
            src_params[i].second.data().clone();
    }
    // Overwrite linear weights from the serialized artifacts.
    auto reload_linears = reloaded.allLinears();
    for (size_t i = 0; i < reload_linears.size(); ++i) {
        PalettizedTensor p = PalettizedTensor::load(paths[i]);
        reload_linears[i].second->weight().mutableData() =
            p.decompress();
    }

    // The reloaded model must generate identical text.
    std::string prompt = "Instruction: add 2 and 3\nResponse: ";
    std::string a = generate(model, tok, prompt, 8);
    std::string b = generate(reloaded, tok, prompt, 8);
    std::cout << "original : " << a << "\nreloaded : " << b << "\n"
              << (a == b ? "MATCH: deployment round trip is lossless\n"
                         : "MISMATCH\n");

    for (const std::string &p : paths) {
        std::remove(p.c_str());
    }
    return a == b ? 0 : 1;
}
